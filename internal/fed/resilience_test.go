package fed

import (
	"bufio"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedpower/internal/faultnet"
)

// TestTCPResilienceKilledAndStraggler is the acceptance scenario: a 4-device
// federation with quorum K = N-2 where one client is killed mid-round and
// another stalls past the round deadline must complete every round,
// aggregating only the survivors.
func TestTCPResilienceKilledAndStraggler(t *testing.T) {
	const (
		rounds  = 4
		clients = 4
	)
	srv := startServer(t, clients, rounds)
	srv.Quorum = clients - 2
	srv.RoundTimeout = 300 * time.Millisecond
	srv.JoinTimeout = 2 * time.Second

	var dropped []uint32
	srv.OnDrop = func(id uint32, round int, err error) {
		dropped = append(dropped, id)
		if round != 2 {
			t.Errorf("client %d dropped in round %d, want round 2", id, round)
		}
	}

	var wg sync.WaitGroup

	// Two healthy devices (IDs 3, 4) adding +3 and +4 per round.
	finals := make([][]float64, clients+1)
	errs := make([]error, clients+1)
	for id := 3; id <= 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := DialID(srv.Addr(), uint32(id))
			if err != nil {
				errs[id] = err
				return
			}
			defer conn.Close()
			finals[id], errs[id] = conn.Participate(ClientFunc(func(round int, global []float64) ([]float64, error) {
				out := make([]float64, len(global))
				for i, g := range global {
					out[i] = g + float64(id)
				}
				return out, nil
			}))
		}(id)
	}

	// Device 1: killed mid-round — answers round 1, reads the round-2 model,
	// then slams the connection shut without answering.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := DialID(srv.Addr(), 1)
		if err != nil {
			errs[1] = err
			return
		}
		for {
			m, err := readMessage(conn.r)
			if err != nil {
				errs[1] = err
				return
			}
			if m.round >= 2 {
				_ = conn.Close()
				return
			}
			for i := range m.params {
				m.params[i] += 1
			}
			if _, err := writeMessage(conn.w, message{kind: msgUpdate, round: m.round, params: m.params}); err != nil {
				errs[1] = err
				return
			}
		}
	}()

	// Device 2: straggler — answers round 1, then stalls far past the round
	// deadline before trying to answer round 2.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := DialID(srv.Addr(), 2)
		if err != nil {
			errs[2] = err
			return
		}
		defer conn.Close()
		for {
			m, err := readMessage(conn.r)
			if err != nil {
				return // dropped by the server, as expected
			}
			if m.round >= 2 {
				time.Sleep(1200 * time.Millisecond)
			}
			for i := range m.params {
				m.params[i] += 2
			}
			if _, err := writeMessage(conn.w, message{kind: msgUpdate, round: m.round, params: m.params}); err != nil {
				return
			}
		}
	}()

	global, err := srv.Serve([]float64{0, 0}, nil)
	wg.Wait()
	if err != nil {
		t.Fatalf("Serve failed despite quorum: %v", err)
	}
	for id := 3; id <= 4; id++ {
		if errs[id] != nil {
			t.Fatalf("healthy client %d: %v", id, errs[id])
		}
	}

	// Round 1 aggregates all four (mean of +1..+4 = +2.5); rounds 2-4
	// aggregate only the two survivors (mean of +3,+4 = +3.5). All values
	// are dyadic, so the arithmetic is exact.
	want := 2.5 + 3.5*float64(rounds-1)
	for i, g := range global {
		if g != want {
			t.Errorf("global[%d] = %v, want %v", i, g, want)
		}
	}
	for id := 3; id <= 4; id++ {
		for i := range global {
			if finals[id][i] != global[i] {
				t.Errorf("client %d final[%d] = %v, want server's %v", id, i, finals[id][i], global[i])
			}
		}
	}
	if srv.Drops() != 2 {
		t.Errorf("server dropped %d clients %v, want 2 (killed + straggler)", srv.Drops(), dropped)
	}
	if srv.Rejoins() != 0 {
		t.Errorf("server counted %d rejoins, want 0", srv.Rejoins())
	}
}

// killNthWrite injects a deterministic mid-round connection death: the n-th
// write on the connection fails and kills the socket.
type killNthWrite struct {
	net.Conn
	count *int32
	n     int32
}

func (k killNthWrite) Write(p []byte) (int, error) {
	if atomic.AddInt32(k.count, 1) == k.n {
		_ = k.Conn.Close()
		return 0, errors.New("injected: connection killed")
	}
	return k.Conn.Write(p)
}

// TestTCPDroppedClientRejoinsNextBroadcast: a device whose connection dies
// mid-round is dropped for that round, reconnects under its retry policy,
// and is aggregated again from the next round on.
func TestTCPDroppedClientRejoinsNextBroadcast(t *testing.T) {
	const rounds = 4
	srv := startServer(t, 2, rounds)
	srv.Quorum = 1
	srv.RoundTimeout = 5 * time.Second
	srv.JoinTimeout = 5 * time.Second

	var wg sync.WaitGroup

	// Steady device (ID 2): +2 per round, slowed so the flaky device's
	// reconnect always lands before the next round starts.
	var steadyFinal []float64
	var steadyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := DialID(srv.Addr(), 2)
		if err != nil {
			steadyErr = err
			return
		}
		defer conn.Close()
		steadyFinal, steadyErr = conn.Participate(ClientFunc(func(round int, global []float64) ([]float64, error) {
			time.Sleep(300 * time.Millisecond)
			out := make([]float64, len(global))
			for i, g := range global {
				out[i] = g + 2
			}
			return out, nil
		}))
	}()

	// Flaky device (ID 1): +4 per round; its first connection's third write
	// (join, round-1 update, round-2 update) fails, so it misses exactly
	// round 2 and rejoins for round 3.
	var writeCount int32
	dials := 0
	part := &Participant{
		Addr: srv.Addr(),
		ID:   1,
		Retry: Backoff{
			Attempts: 5,
			Base:     10 * time.Millisecond,
			Jitter:   rand.New(rand.NewSource(1)),
		},
		Dialer: func(addr string) (net.Conn, error) {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dials++
			if dials == 1 {
				return killNthWrite{Conn: c, count: &writeCount, n: 3}, nil
			}
			return c, nil
		},
	}
	var flakyFinal []float64
	var flakyErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		flakyFinal, flakyErr = part.Run(ClientFunc(func(round int, global []float64) ([]float64, error) {
			out := make([]float64, len(global))
			for i, g := range global {
				out[i] = g + 4
			}
			return out, nil
		}))
	}()

	global, err := srv.Serve([]float64{0}, nil)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if steadyErr != nil || flakyErr != nil {
		t.Fatalf("client errors: steady=%v flaky=%v", steadyErr, flakyErr)
	}

	// Rounds 1, 3, 4 aggregate both (+3); round 2 only the steady device
	// (+2). Exact dyadic arithmetic: 3+2+3+3 = 11.
	if global[0] != 11 {
		t.Fatalf("global = %v, want 11 (flaky device must miss exactly round 2)", global[0])
	}
	if flakyFinal[0] != global[0] || steadyFinal[0] != global[0] {
		t.Fatalf("final models (flaky %v, steady %v) differ from server %v", flakyFinal, steadyFinal, global)
	}
	if part.Reconnects() != 1 {
		t.Errorf("flaky device reconnected %d times, want 1", part.Reconnects())
	}
	if srv.Drops() != 1 || srv.Rejoins() != 1 {
		t.Errorf("server drops=%d rejoins=%d, want 1 and 1", srv.Drops(), srv.Rejoins())
	}
	if part.LastRound() != rounds {
		t.Errorf("flaky device last round %d, want %d", part.LastRound(), rounds)
	}
}

// TestTCPFederationUnderFaultnet drives a federation through seeded fault
// injection: connections drop and frames truncate per the faultnet
// schedule, devices reconnect under backoff, and the run must either
// complete all rounds or abort with a quorum RoundError — never hang, never
// corrupt an aggregate (asserted by the server finishing with a well-formed
// model), never race.
func TestTCPFederationUnderFaultnet(t *testing.T) {
	const (
		rounds  = 5
		clients = 3
	)
	srv := startServer(t, clients, rounds)
	srv.Quorum = clients - 1
	srv.RoundTimeout = 2 * time.Second
	srv.WriteTimeout = 2 * time.Second
	srv.JoinTimeout = 2 * time.Second

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		inj := faultnet.NewInjector(900+int64(i), faultnet.Config{
			DropRate:     0.06,
			TruncateRate: 0.04,
		})
		part := &Participant{
			Addr: srv.Addr(),
			ID:   uint32(i + 1),
			Retry: Backoff{
				Attempts: 8,
				Base:     5 * time.Millisecond,
				Max:      50 * time.Millisecond,
				Jitter:   rand.New(rand.NewSource(int64(i))),
			},
			Dialer: func(addr string) (net.Conn, error) {
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				return inj.Wrap(c), nil
			},
		}
		wg.Add(1)
		go func(i int, part *Participant) {
			defer wg.Done()
			_, errs[i] = part.Run(ClientFunc(func(round int, global []float64) ([]float64, error) {
				out := make([]float64, len(global))
				for k, g := range global {
					out[k] = g + float64(i+1)
				}
				return out, nil
			}))
		}(i, part)
	}

	completed := 0
	global, err := srv.Serve(make([]float64, 8), func(round int, g []float64) { completed = round })
	wg.Wait()

	if err != nil {
		// A quorum collapse is a legitimate outcome under fault injection —
		// but it must be reported as a structured round error, and the
		// completed rounds must be consistent with where it stopped.
		var re *RoundError
		if !errors.As(err, &re) {
			t.Fatalf("federation failed without round context: %v", err)
		}
		if re.Round != completed+1 {
			t.Errorf("failed in round %d but %d rounds committed", re.Round, completed)
		}
		return
	}
	if completed != rounds {
		t.Fatalf("hook saw %d rounds, want %d", completed, rounds)
	}
	for i, g := range global {
		// Every round adds a mean in [1, clients]; the final model must be
		// inside the reachable envelope.
		if g < 1 || g > float64(clients*rounds) {
			t.Fatalf("global[%d] = %v outside reachable range [1,%d]", i, g, clients*rounds)
		}
	}
	// A device that gave up retrying must be reflected in the server's
	// drop accounting.
	for i, e := range errs {
		if e != nil {
			t.Logf("client %d gave up: %v (drops=%d rejoins=%d)", i+1, e, srv.Drops(), srv.Rejoins())
		}
	}
}

// TestReadMessageOverFaultnetTruncation: a frame truncated by the fault
// injector mid-payload must surface as a decode error on the reading side,
// never as a short message.
func TestReadMessageOverFaultnetTruncation(t *testing.T) {
	inj := faultnet.NewInjector(3, faultnet.Config{TruncateRate: 1})
	a, b := net.Pipe()
	fa := inj.Wrap(a)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := bufio.NewWriter(b)
		// The raw side writes a full paper-sized frame (687 params, 2757
		// bytes — larger than half of bufio's fill buffer, so the injector's
		// truncation actually cuts data); the faulty side sees a prefix and
		// then a dead connection.
		_, _ = writeMessage(w, message{kind: msgModel, round: 1, params: make([]float64, 687)})
		_ = b.Close()
	}()
	m, err := readMessage(bufio.NewReader(fa))
	<-done
	_ = fa.Close()
	if err == nil {
		t.Fatalf("truncated frame decoded as success: %+v", m)
	}
	if len(m.params) != 0 {
		t.Fatalf("truncated frame yielded %d params", len(m.params))
	}
}

// TestParticipateReportsRoundAndPhase is the error-context fix: a server
// teardown mid-round must surface as a *RoundError naming the round and the
// receive phase, not a bare read error.
func TestParticipateReportsRoundAndPhase(t *testing.T) {
	srv := startServer(t, 1, 10)
	srv.JoinTimeout = 2 * time.Second

	done := make(chan error, 1)
	go func() {
		conn, err := Dial(srv.Addr())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = conn.Participate(ClientFunc(func(round int, global []float64) ([]float64, error) {
			if round == 2 {
				// Kill the whole server between receive and send of round 2.
				_ = srv.Close()
			}
			return global, nil
		}))
		done <- err
	}()

	_, serveErr := srv.Serve([]float64{1, 2}, nil)
	if serveErr == nil {
		t.Fatal("Serve survived its listener being closed mid-protocol")
	}
	err := <-done
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("client error %v (%T) is not a *RoundError", err, err)
	}
	if re.Round < 2 {
		t.Errorf("client error reports round %d, want >= 2", re.Round)
	}
	if re.Phase != PhaseReceive && re.Phase != PhaseSend {
		t.Errorf("client error reports phase %q, want receive or send", re.Phase)
	}
	if re.Timeout() {
		t.Error("connection teardown misclassified as a timeout")
	}
}

// TestServerTimeoutClassification: a deadline miss is a Timeout RoundError
// in the collect phase; a protocol violation is not a timeout.
func TestServerTimeoutClassification(t *testing.T) {
	srv := startServer(t, 1, 3)
	srv.RoundTimeout = 150 * time.Millisecond
	srv.JoinTimeout = 2 * time.Second

	var dropErr error
	srv.OnDrop = func(id uint32, round int, err error) { dropErr = err }

	connected := make(chan struct{})
	go func() {
		conn, err := Dial(srv.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		close(connected)
		// Hang without ever answering.
		_, _ = readMessage(conn.r)
		time.Sleep(2 * time.Second)
	}()
	<-connected
	_, err := srv.Serve([]float64{1}, nil)
	if err == nil {
		t.Fatal("Serve completed with a silent client below quorum")
	}
	var re *RoundError
	if !errors.As(err, &re) {
		t.Fatalf("quorum abort %v is not a *RoundError", err)
	}
	if re.Phase != PhaseCollect || re.Round != 1 {
		t.Errorf("abort context round %d phase %q, want round 1 collect", re.Round, re.Phase)
	}
	if !re.Timeout() {
		t.Errorf("straggler drop not classified as timeout: %v", err)
	}
	var de *RoundError
	if !errors.As(dropErr, &de) || !de.Timeout() {
		t.Errorf("OnDrop error %v not a timeout RoundError", dropErr)
	}
}

// TestDialRetryBackoffDeterministic: the retry schedule is capped
// exponential with seeded jitter — and replays bit-identically.
func TestDialRetryBackoffDeterministic(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		b := Backoff{
			Attempts: 5,
			Base:     100 * time.Millisecond,
			Max:      400 * time.Millisecond,
			Jitter:   rand.New(rand.NewSource(seed)),
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
		}
		// 127.0.0.1:1 is reliably closed.
		if _, err := DialRetry("127.0.0.1:1", 1, b); err == nil {
			t.Fatal("DialRetry to a closed port succeeded")
		}
		return slept
	}
	first := schedule(7)
	if len(first) != 4 {
		t.Fatalf("5 attempts slept %d times, want 4", len(first))
	}
	uncapped := []time.Duration{100, 200, 400, 400} // ms, pre-jitter: base·2^k capped
	for i, d := range first {
		hi := uncapped[i] * time.Millisecond
		if d < hi/2 || d > hi {
			t.Errorf("delay %d = %v outside jitter window [%v, %v]", i, d, hi/2, hi)
		}
	}
	second := schedule(7)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("backoff schedule not replayable: %v vs %v", first, second)
		}
	}
	// Different seed, different jitter.
	other := schedule(8)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("jitter ignores the seed")
	}
}

func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if b.attempts() != 3 {
		t.Errorf("default attempts = %d, want 3", b.attempts())
	}
	if d := b.Delay(0); d != 100*time.Millisecond {
		t.Errorf("default first delay = %v, want 100ms", d)
	}
	if d := b.Delay(20); d != 5*time.Second {
		t.Errorf("default capped delay = %v, want 5s", d)
	}
}

func TestServeRejectsQuorumAboveClients(t *testing.T) {
	srv := startServer(t, 2, 1)
	srv.Quorum = 3
	if _, err := srv.Serve([]float64{1}, nil); err == nil {
		t.Fatal("quorum above client count accepted")
	}
}

// TestParticipantLocalTrainingErrorNotRetried: a device whose own trainer
// fails must not reconnect — the failure is local, not transport.
func TestParticipantLocalTrainingErrorNotRetried(t *testing.T) {
	srv := startServer(t, 1, 3)
	srv.JoinTimeout = 2 * time.Second
	sentinel := errors.New("NaN in gradients")

	done := make(chan error, 1)
	part := &Participant{Addr: srv.Addr(), ID: 1, Retry: Backoff{Attempts: 4, Base: time.Millisecond}}
	go func() {
		_, err := part.Run(ClientFunc(func(round int, global []float64) ([]float64, error) {
			return nil, sentinel
		}))
		done <- err
	}()
	if _, err := srv.Serve([]float64{1}, nil); err == nil {
		t.Fatal("Serve completed although its only client failed locally")
	}
	err := <-done
	if !errors.Is(err, sentinel) {
		t.Fatalf("participant error %v does not wrap the training failure", err)
	}
	var re *RoundError
	if !errors.As(err, &re) || re.Phase != PhaseTrain || re.Round != 1 {
		t.Fatalf("participant error %v lacks train-phase context", err)
	}
	if part.Reconnects() != 0 {
		t.Errorf("participant reconnected %d times after a local failure, want 0", part.Reconnects())
	}
}
