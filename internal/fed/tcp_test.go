package fed

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer creates a loopback server on an ephemeral port.
func startServer(t *testing.T, clients, rounds int) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", clients, rounds)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", 0, 5); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := NewServer("127.0.0.1:0", 2, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := NewServer("500.0.0.1:xx", 2, 5); err == nil {
		t.Error("bogus address accepted")
	}
}

// TestTCPFederationEndToEnd runs the full protocol over loopback: two
// clients that add +2 and +4 per round must drive the global model up by +3
// per round, exactly as the in-process orchestrator does.
func TestTCPFederationEndToEnd(t *testing.T) {
	const rounds = 5
	srv := startServer(t, 2, rounds)

	runClient := func(delta float64, result *[]float64, errOut *error) {
		conn, err := Dial(srv.Addr())
		if err != nil {
			*errOut = err
			return
		}
		defer conn.Close()
		final, err := conn.Participate(ClientFunc(func(round int, global []float64) ([]float64, error) {
			out := make([]float64, len(global))
			for i, g := range global {
				out[i] = g + delta
			}
			return out, nil
		}))
		*result, *errOut = final, err
	}

	var wg sync.WaitGroup
	var finalA, finalB []float64
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); runClient(2, &finalA, &errA) }()
	go func() { defer wg.Done(); runClient(4, &finalB, &errB) }()

	global, err := srv.Serve([]float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("client errors: %v, %v", errA, errB)
	}

	want := float64(3 * rounds)
	for i, g := range global {
		if g != want {
			t.Errorf("server global[%d] = %v, want %v", i, g, want)
		}
	}
	// Both clients receive the identical final model.
	for i := range global {
		if finalA[i] != global[i] || finalB[i] != global[i] {
			t.Errorf("final model mismatch at %d: server %v, A %v, B %v", i, global[i], finalA[i], finalB[i])
		}
	}
}

func TestTCPServeHookAndByteAccounting(t *testing.T) {
	const rounds = 3
	const params = 10
	srv := startServer(t, 1, rounds)

	done := make(chan error, 1)
	go func() {
		conn, err := Dial(srv.Addr())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = conn.Participate(ClientFunc(func(round int, global []float64) ([]float64, error) {
			return global, nil
		}))
		// The client's own accounting should cover every round plus the
		// final done message.
		wantRecv := int64((rounds + 1) * TransferSize(params))
		if err == nil && conn.BytesReceived() != wantRecv {
			t.Errorf("client received %d bytes, want %d", conn.BytesReceived(), wantRecv)
		}
		if err == nil && conn.BytesSent() != int64(rounds*TransferSize(params)) {
			t.Errorf("client sent %d bytes, want %d", conn.BytesSent(), rounds*TransferSize(params))
		}
		done <- err
	}()

	hookRounds := 0
	if _, err := srv.Serve(make([]float64, params), func(round int, g []float64) { hookRounds++ }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if hookRounds != rounds {
		t.Errorf("hook ran %d times, want %d", hookRounds, rounds)
	}
	// Server accounting: (rounds+1 broadcasts) sent, rounds updates
	// received, one client.
	if got, want := srv.BytesSent(), int64((rounds+1)*TransferSize(params)); got != want {
		t.Errorf("server sent %d bytes, want %d", got, want)
	}
	if got, want := srv.BytesReceived(), int64(rounds*TransferSize(params)); got != want {
		t.Errorf("server received %d bytes, want %d", got, want)
	}
}

func TestTCPClientFailureAbortsServer(t *testing.T) {
	srv := startServer(t, 1, 10)
	go func() {
		conn, err := Dial(srv.Addr())
		if err != nil {
			return
		}
		// Read the first model, then slam the connection shut mid-protocol.
		readMessage(conn.r)
		conn.Close()
	}()
	if _, err := srv.Serve([]float64{1, 2}, nil); err == nil {
		t.Fatal("server completed despite a client vanishing")
	}
}

func TestTCPWrongRoundRejected(t *testing.T) {
	srv := startServer(t, 1, 5)
	go func() {
		conn, err := Dial(srv.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		m, err := readMessage(conn.r)
		if err != nil {
			return
		}
		// Answer with a stale round number.
		writeMessage(conn.w, message{kind: msgUpdate, round: m.round + 7, params: m.params})
	}()
	if _, err := srv.Serve([]float64{1}, nil); err == nil || !strings.Contains(err.Error(), "round") {
		t.Fatalf("stale round accepted: %v", err)
	}
}

func TestTCPWrongParamCountRejected(t *testing.T) {
	srv := startServer(t, 1, 5)
	go func() {
		conn, err := Dial(srv.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		m, err := readMessage(conn.r)
		if err != nil {
			return
		}
		writeMessage(conn.w, message{kind: msgUpdate, round: m.round, params: make([]float64, len(m.params)+1)})
	}()
	if _, err := srv.Serve([]float64{1, 2}, nil); err == nil {
		t.Fatal("wrong parameter count accepted")
	}
}

func TestTCPRoundTimeoutOnHungClient(t *testing.T) {
	srv := startServer(t, 1, 5)
	srv.RoundTimeout = 100 * time.Millisecond
	connected := make(chan struct{})
	go func() {
		conn, err := Dial(srv.Addr())
		if err != nil {
			return
		}
		defer conn.Close()
		close(connected)
		// Read the first model, then hang without ever answering.
		readMessage(conn.r)
		time.Sleep(5 * time.Second)
	}()
	start := time.Now()
	_, err := srv.Serve([]float64{1}, nil)
	if err == nil {
		t.Fatal("server completed despite a hung client")
	}
	<-connected
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("server took %v to give up on a hung client, want ~RoundTimeout", elapsed)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("Dial to a closed port succeeded")
	}
}
