package fed

import (
	"fmt"
	"strconv"
	"strings"

	"fedpower/internal/nn"
	"fedpower/internal/par"
)

// Hierarchical aggregation topology. A TreeNode describes one aggregation
// node: the leaf devices attached directly to it and the child aggregators
// below it. The root of a tree is the central server; interior nodes are
// edge/regional aggregators (fed.Aggregator over TCP, or emulated in
// process by RunTree).
//
// Because every aggregation step in this package is an exact fixed-point
// sum (nn.Accum) and only the root rounds and scales, the aggregated model
// is a function of the leaf multiset only: any topology over the same
// clients — including the flat single-server one — produces bit-identical
// parameters every round. See DESIGN.md, "Hierarchical aggregation".
type TreeNode struct {
	// Leaves is the number of leaf devices attached directly to this node.
	Leaves int
	// Children are the child aggregators below this node.
	Children []*TreeNode
}

// LeafCount returns the total leaf-device population of the subtree.
func (t *TreeNode) LeafCount() int {
	n := t.Leaves
	for _, c := range t.Children {
		n += c.LeafCount()
	}
	return n
}

// Depth returns the number of aggregation levels in the subtree: 1 for a
// flat server with only direct leaves, 2 for one tier of edge aggregators,
// and so on.
func (t *TreeNode) Depth() int {
	d := 1
	for _, c := range t.Children {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// Validate checks the subtree is a usable topology: every node aggregates
// something and every leaf count is non-negative.
func (t *TreeNode) Validate() error {
	if t.Leaves < 0 {
		return fmt.Errorf("fed: negative leaf count %d", t.Leaves)
	}
	if t.Leaves == 0 && len(t.Children) == 0 {
		return fmt.Errorf("fed: aggregation node with no leaves and no children")
	}
	for _, c := range t.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Uniform builds a balanced topology from per-level fan-outs: the last
// number is leaves per deepest aggregator, the ones before it are child
// aggregators per node. Uniform(8) is a flat 8-device server, Uniform(4, 8)
// a 2-level tree of 4 edge aggregators with 8 devices each (32 leaves), and
// Uniform(2, 4, 8) a 3-level tree with 64 leaves.
func Uniform(fanouts ...int) *TreeNode {
	if len(fanouts) == 0 {
		return &TreeNode{}
	}
	if len(fanouts) == 1 {
		return &TreeNode{Leaves: fanouts[0]}
	}
	n := &TreeNode{}
	for i := 0; i < fanouts[0]; i++ {
		n.Children = append(n.Children, Uniform(fanouts[1:]...))
	}
	return n
}

// ParseTopology parses an "AxBxC" fan-out spec (as accepted by the daemon
// CLIs' -topology flags) into a balanced tree: "8" is a flat 8-device
// server, "4x8" four edge aggregators of 8 devices, "2x4x8" two regions of
// four edges of 8 devices.
func ParseTopology(s string) (*TreeNode, error) {
	parts := strings.Split(strings.TrimSpace(s), "x")
	fanouts := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("fed: topology %q: level %d is not a positive integer", s, i)
		}
		fanouts[i] = v
	}
	t := Uniform(fanouts...)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// TreeConfig configures an in-process hierarchical federation (RunTree).
type TreeConfig struct {
	// Rounds is the number of federated rounds; it must be positive.
	Rounds int
	// Parallelism bounds how many leaves train concurrently and how many
	// child subtrees aggregate concurrently at each node; 0 means
	// sequential (width 1), matching RunParallel's convention. Every
	// width produces bit-identical parameters: subtree sums are exact and
	// merged in child order.
	Parallelism int
	// Codec applies the wire-emulation codec on every root↔leaf parameter
	// path, with each leaf's streams seeded by its global leaf index —
	// exactly as the flat runners seed them, so a lossless codec keeps the
	// tree bit-identical to RunParallelCodec. The zero value exchanges raw
	// float64 values.
	Codec Codec
	// Hook, if non-nil, observes the root's global model after every
	// aggregation.
	Hook RoundHook
}

// treeState is one node's prepared aggregation state: its exact accumulator
// vector, the global index range of its direct leaves, and the node's own
// relay-hop scratch, all reused across rounds. Scratch is per node — not
// threaded through the recursion — so sibling subtrees can resolve their
// sums concurrently without sharing mutable state.
type treeState struct {
	node        *TreeNode
	acc         []nn.Accum
	children    []*treeState
	childLeaves []int // per-child subtree leaf counts (own slot per task)
	leafLo      int
	scratch     []byte   // relay-hop wire buffer for merging child sums
	tmp         nn.Accum // relay-hop decode target
}

// buildTreeState assigns global leaf indices in depth-first pre-order (a
// node's direct leaves first, then each child subtree) and allocates the
// per-node accumulators.
func buildTreeState(t *TreeNode, numParams int, nextLeaf *int) *treeState {
	st := &treeState{node: t, acc: make([]nn.Accum, numParams), leafLo: *nextLeaf}
	*nextLeaf += t.Leaves
	for _, c := range t.Children {
		st.children = append(st.children, buildTreeState(c, numParams, nextLeaf))
	}
	st.childLeaves = make([]int, len(st.children))
	return st
}

// sum computes the node's exact per-parameter subtree sums into st.acc and
// returns the subtree leaf count. Child subtrees resolve their own sums
// first — up to width concurrently, each child state owned by its task —
// then the child results cross an emulated relay hop in child order:
// encoded with nn's accumulator wire format and decoded back, so the
// in-process tree exercises the same exact-relay arithmetic as the TCP
// aggregators, not a shortcut around it. The ordered merge plus exact
// child sums make the result bit-identical at every width.
func (st *treeState) sum(locals [][]float64, width int) (int, error) {
	for i := range st.acc {
		st.acc[i].Reset()
	}
	for l := 0; l < st.node.Leaves; l++ {
		nn.AddParamsAccum(st.acc, locals[st.leafLo+l])
	}
	total := st.node.Leaves
	if len(st.children) == 0 {
		return total, nil
	}
	err := par.ForEach(width, len(st.children), func(i int) error {
		c := st.children[i]
		leaves, err := c.sum(locals, width)
		if err != nil {
			return err
		}
		st.childLeaves[i] = leaves
		return nil
	})
	if err != nil {
		return 0, err
	}
	for ci, c := range st.children {
		for i := range c.acc {
			buf := c.acc[i].AppendWire(st.scratch[:0])
			st.scratch = buf[:0]
			if _, err := nn.DecodeAccumInto(&st.tmp, buf); err != nil {
				return 0, fmt.Errorf("fed: relay hop: %w", err)
			}
			st.acc[i].AddAccum(&st.tmp)
		}
		total += st.childLeaves[ci]
	}
	return total, nil
}

// RunTree drives an in-process hierarchical federation: clients are
// attached to the topology's leaf slots in depth-first order, each round
// trains every leaf (up to Parallelism concurrently, own-slot discipline as
// in run), sums each subtree exactly, merges the sub-sums upward through
// emulated relay hops, and lets the root round the mean. The result is
// bit-identical, every round, to Run / RunParallelCodec over the same
// clients in leaf order — the property TestTreeBitIdenticalRandomTopologies
// pins inside the determinism gate.
func RunTree(global []float64, clients []Client, topo *TreeNode, cfg TreeConfig) error {
	if cfg.Rounds <= 0 {
		return fmt.Errorf("fed: round count %d must be positive", cfg.Rounds)
	}
	if topo == nil {
		return fmt.Errorf("fed: nil topology")
	}
	if err := topo.Validate(); err != nil {
		return err
	}
	if n := topo.LeafCount(); n != len(clients) {
		return fmt.Errorf("fed: topology has %d leaves for %d clients", n, len(clients))
	}
	width := cfg.Parallelism
	if width <= 0 {
		width = 1
	}

	locals := make([][]float64, len(clients))
	for i := range locals {
		locals[i] = make([]float64, len(global))
	}
	links := newCodecLinks(cfg.Codec, len(clients))
	broadcast := make([]float64, len(global))
	var nextLeaf int
	root := buildTreeState(topo, len(global), &nextLeaf)

	for r := 1; r <= cfg.Rounds; r++ {
		copy(broadcast, global)
		err := par.ForEach(width, len(clients), func(i int) error {
			view := broadcast
			if links != nil {
				var cerr error
				if view, cerr = links[i].broadcast(broadcast); cerr != nil {
					return fmt.Errorf("fed: round %d leaf %d: %w", r, i, cerr)
				}
			}
			updated, err := clients[i].TrainRound(r, view)
			if err != nil {
				return fmt.Errorf("fed: round %d leaf %d: %w", r, i, err)
			}
			if len(updated) != len(global) {
				return fmt.Errorf("fed: round %d leaf %d returned %d params, want %d", r, i, len(updated), len(global))
			}
			if links != nil {
				decoded, cerr := links[i].update(updated)
				if cerr != nil {
					return fmt.Errorf("fed: round %d leaf %d: %w", r, i, cerr)
				}
				updated = decoded
			}
			copy(locals[i], updated)
			return nil
		})
		if err != nil {
			return err
		}
		total, err := root.sum(locals, width)
		if err != nil {
			return err
		}
		nn.MeanAccum(global, root.acc, total)
		if cfg.Hook != nil {
			cfg.Hook(r, global)
		}
	}
	return nil
}
