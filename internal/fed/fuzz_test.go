package fed

// Fuzz-style property tests for the federation wire format — the only data
// that crosses device boundaries, so the decoder must be total: every
// well-formed message round-trips exactly and every malformed byte stream
// returns an error instead of panicking or over-allocating. Complements the
// deterministic cases in wire_test.go the way internal/sim/fuzz_test.go
// complements the simulator's unit tests.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"testing"

	"fedpower/internal/faultnet"
	"fedpower/internal/nn"
)

// paramsFromBytes reinterprets fuzz input as a float32 parameter vector —
// the exact value set representable on the wire, including NaN, ±Inf and
// subnormals.
func paramsFromBytes(data []byte) []float64 {
	params := make([]float64, len(data)/4)
	for i := range params {
		params[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:])))
	}
	return params
}

// sameWireValue compares two parameters as their wire representation:
// identical float32 bit patterns, with every NaN payload considered equal
// (bit-level NaN payloads are not preserved across float32↔float64
// conversion on all platforms).
func sameWireValue(a, b float64) bool {
	fa, fb := float32(a), float32(b)
	if math.IsNaN(float64(fa)) || math.IsNaN(float64(fb)) {
		return math.IsNaN(float64(fa)) && math.IsNaN(float64(fb))
	}
	return math.Float32bits(fa) == math.Float32bits(fb)
}

// FuzzWireRoundTrip checks decode(encode(x)) == x for arbitrary message
// kinds, rounds and float32 parameter payloads.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint32(1), []byte{})
	f.Add(uint8(2), uint32(100), []byte{0, 0, 128, 63})             // [1.0]
	f.Add(uint8(3), uint32(0), []byte{0, 0, 192, 255, 0, 0, 128, 127}) // [NaN, +Inf]
	f.Add(uint8(2), uint32(1<<31), []byte{1, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, kind uint8, round uint32, payload []byte) {
		if kind != msgModel && kind != msgUpdate && kind != msgDone {
			kind = msgModel // round-trip needs a valid kind; totality is FuzzReadMessage's job
		}
		in := message{kind: kind, round: int(round), params: paramsFromBytes(payload)}

		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		n, err := writeMessage(w, in)
		if err != nil {
			t.Fatalf("writeMessage: %v", err)
		}
		if n != buf.Len() {
			t.Fatalf("writeMessage reported %d bytes, wrote %d", n, buf.Len())
		}
		if want := TransferSize(len(in.params)); len(in.params) > 0 && n != want {
			t.Fatalf("on-wire size %d, want TransferSize=%d", n, want)
		}

		out, err := readMessage(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("readMessage of a freshly encoded message: %v", err)
		}
		if out.kind != in.kind {
			t.Fatalf("kind %d -> %d", in.kind, out.kind)
		}
		if uint32(out.round) != round {
			t.Fatalf("round %d -> %d", round, out.round)
		}
		if len(out.params) != len(in.params) {
			t.Fatalf("param count %d -> %d", len(in.params), len(out.params))
		}
		for i := range in.params {
			if !sameWireValue(in.params[i], out.params[i]) {
				t.Fatalf("param %d: %v -> %v", i, in.params[i], out.params[i])
			}
		}
	})
}

// FuzzFaultyReadMessage models the faults internal/faultnet injects on a
// live connection — truncation mid-frame and bit corruption — on top of a
// well-formed message. The decoder must error or return a complete frame
// that is consistent with the (possibly corrupted) bytes it actually read;
// it must never panic and never pass a partial frame off as success.
func FuzzFaultyReadMessage(f *testing.F) {
	f.Add(uint8(1), uint32(3), []byte{0, 0, 128, 63}, uint16(5), uint16(0), uint8(0))   // cut inside payload
	f.Add(uint8(2), uint32(1), []byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(999), uint16(0), uint8(255)) // corrupt kind
	f.Add(uint8(3), uint32(7), []byte{}, uint16(4), uint16(0), uint8(0))                // cut inside header
	f.Add(uint8(4), uint32(9), []byte{}, uint16(999), uint16(6), uint8(128))            // corrupt count of a join
	f.Add(uint8(1), uint32(2), []byte{0, 0, 192, 255}, uint16(999), uint16(7), uint8(64)) // inflate count
	f.Fuzz(func(t *testing.T, kind uint8, round uint32, payload []byte, cut uint16, xorIdx uint16, xorMask uint8) {
		switch kind % 4 {
		case 0:
			kind = msgModel
		case 1:
			kind = msgUpdate
		case 2:
			kind = msgDone
		case 3:
			kind = msgJoin
		}
		in := message{kind: kind, round: int(round), params: paramsFromBytes(payload)}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if _, err := writeMessage(w, in); err != nil {
			t.Fatalf("writeMessage: %v", err)
		}
		wire := buf.Bytes()

		// Fault 1: flip bits of one byte anywhere in the frame.
		if xorMask != 0 && len(wire) > 0 {
			wire[int(xorIdx)%len(wire)] ^= xorMask
		}
		// Fault 2: truncate the frame at an arbitrary point (a cut past the
		// end leaves it whole).
		if int(cut) < len(wire) {
			wire = wire[:cut]
		}

		m, err := readMessage(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			return // faulty input must error, and did
		}
		// The decoder claimed success: the frame it returned must be
		// complete and consistent with the bytes that were available.
		if len(wire) < headerSize {
			t.Fatalf("decoder succeeded on a %d-byte stream, shorter than the header", len(wire))
		}
		if m.kind != msgModel && m.kind != msgUpdate && m.kind != msgDone && m.kind != msgJoin && m.kind != msgRelay {
			t.Fatalf("decoder accepted unknown message kind %d", m.kind)
		}
		count := int(binary.LittleEndian.Uint32(wire[5:]))
		if m.kind == msgRelay {
			// A corrupted kind byte can turn a frame into a relay; success
			// then requires a complete, consistent accumulator block.
			if len(m.sums) != count {
				t.Fatalf("decoder returned %d sums for a relay header declaring %d", len(m.sums), count)
			}
			if m.leaves < 1 {
				t.Fatalf("decoder accepted a relay frame with leaf count %d", m.leaves)
			}
			if len(wire) < headerSize+8 {
				t.Fatalf("decoder returned a relay frame from %d bytes, shorter than its preamble", len(wire))
			}
			blen := int(binary.LittleEndian.Uint32(wire[headerSize+4:]))
			if len(wire) < headerSize+8+blen {
				t.Fatalf("decoder returned a relay frame from %d bytes, needs %d — partial sub-sum passed as success",
					len(wire), headerSize+8+blen)
			}
			return
		}
		if m.kind == msgJoin {
			// A join's count field carries the codec wire ID, not a
			// parameter count; the frame is payload-free by definition.
			if len(m.params) != 0 {
				t.Fatalf("decoder returned %d params for a join frame", len(m.params))
			}
			if int(m.codec) != count {
				t.Fatalf("decoder returned codec %d for a header declaring %d", m.codec, count)
			}
			return
		}
		if len(m.params) != count {
			t.Fatalf("decoder returned %d params for a header declaring %d", len(m.params), count)
		}
		if need := headerSize + nn.WireSize(count); len(wire) < need {
			t.Fatalf("decoder returned a %d-param frame from %d bytes, needs %d — partial frame passed as success",
				count, len(wire), need)
		}
	})
}

// FuzzReadMessage feeds arbitrary bytes to the decoder: it must either
// return a structurally valid message or an error — never panic, and never
// allocate beyond the maxWireParams bound.
func FuzzReadMessage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})                   // unknown kind 0
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0})                   // model, 0 params
	f.Add([]byte{2, 1, 0, 0, 0, 1, 0, 0, 0})                   // update, 1 param, truncated payload
	f.Add([]byte{3, 0, 0, 0, 0, 255, 255, 255, 255})           // done, absurd count
	f.Add(append([]byte{1, 1, 0, 0, 0, 1, 0, 0, 0}, 0, 0, 128, 63)) // complete 1-param model
	f.Add([]byte{5, 1, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 10, 0, 0, 0, 1, 17, 3, 0, 0, 0, 0, 0, 0, 0}) // relay, 1 sum, 2 leaves
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readMessage(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // malformed input must error, and did
		}
		if m.kind != msgModel && m.kind != msgUpdate && m.kind != msgDone && m.kind != msgJoin && m.kind != msgRelay {
			t.Fatalf("decoder accepted unknown message kind %d", m.kind)
		}
		if len(m.params) > maxWireParams {
			t.Fatalf("decoder exceeded the parameter bound: %d params", len(m.params))
		}
		if len(m.sums) > maxWireParams {
			t.Fatalf("decoder exceeded the accumulator bound: %d sums", len(m.sums))
		}
		// A successfully decoded message must itself round-trip.
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if _, err := writeMessage(w, m); err != nil {
			t.Fatalf("re-encode of decoded message: %v", err)
		}
		if m.kind == msgRelay {
			// The input block may be non-canonical (padded spans decode too),
			// so sizes need not match — but the re-encoded frame must decode
			// back to the same accumulators and leaf count.
			m2, err := readMessage(bufio.NewReader(bytes.NewReader(buf.Bytes())))
			if err != nil {
				t.Fatalf("re-decode of re-encoded relay frame: %v", err)
			}
			if m2.leaves != m.leaves || len(m2.sums) != len(m.sums) {
				t.Fatalf("relay round-trip changed shape: leaves %d->%d, sums %d->%d",
					m.leaves, m2.leaves, len(m.sums), len(m2.sums))
			}
			for i := range m.sums {
				if m.sums[i] != m2.sums[i] {
					t.Fatalf("relay round-trip changed accumulator %d", i)
				}
			}
			return
		}
		want := headerSize + nn.WireSize(len(m.params))
		if m.kind == msgJoin {
			want = headerSize // joins are payload-free; count carries the codec ID
		}
		if buf.Len() != want {
			t.Fatalf("re-encoded size %d, want %d", buf.Len(), want)
		}
	})
}

// relayFrameBytes encodes one well-formed relay frame for seeding the relay
// fuzzer.
func relayFrameBytes(tb testing.TB, numParams, leaves int) []byte {
	sums := make([]nn.Accum, numParams)
	for i := range sums {
		sums[i].Add(float64(i) + 0.5)
		sums[i].Add(-1.0 / float64(i+3))
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if _, err := writeMessage(w, message{kind: msgRelay, round: 1, leaves: leaves, sums: sums}); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRelayFrame drives an interior aggregator's collect path with
// truncated and corrupted child relay frames, layered under faultnet's
// seeded connection faults. Whatever arrives, the aggregator must never
// panic, never accept a partial sub-sum as a contribution (every accepted
// relay carries exactly the declared accumulator count and a positive leaf
// population), and on failure must surface a typed *RoundError carrying the
// child hop's ID.
func FuzzRelayFrame(f *testing.F) {
	f.Add(relayFrameBytes(f, 3, 4), uint16(9999), uint16(0), uint8(0), int64(0))
	f.Add(relayFrameBytes(f, 3, 4), uint16(12), uint16(0), uint8(0), int64(0))   // cut inside preamble
	f.Add(relayFrameBytes(f, 3, 4), uint16(22), uint16(0), uint8(0), int64(0))   // cut inside block
	f.Add(relayFrameBytes(f, 3, 4), uint16(9999), uint16(0), uint8(7), int64(0)) // corrupt kind byte
	f.Add(relayFrameBytes(f, 3, 1), uint16(9999), uint16(9), uint8(255), int64(1))
	f.Add(relayFrameBytes(f, 3, 2), uint16(9999), uint16(13), uint8(128), int64(2)) // corrupt block length
	f.Add([]byte{5, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 10, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0}, uint16(9999), uint16(0), uint8(0), int64(3))
	f.Fuzz(func(t *testing.T, frame []byte, cut uint16, xorIdx uint16, xorMask uint8, seed int64) {
		const numParams = 3
		if xorMask != 0 && len(frame) > 0 {
			frame[int(xorIdx)%len(frame)] ^= xorMask
		}
		if int(cut) < len(frame) {
			frame = frame[:cut]
		}

		child, parent := net.Pipe()
		defer child.Close()
		defer parent.Close()
		inj := faultnet.NewInjector(seed, faultnet.Config{DropRate: 0.05, TruncateRate: 0.15})
		go func() {
			_, _ = child.Write(frame)
			_ = child.Close()
		}()

		s := &Server{}
		wrapped := inj.Wrap(parent)
		sc := &serverConn{
			conn: wrapped,
			r:    bufio.NewReader(wrapped),
			w:    bufio.NewWriter(wrapped),
			id:   7,
			tx:   newCodecState(Codec{}, streamDown+14),
			rx:   newCodecState(Codec{}, streamUp+14),
		}
		ses := s.newSession()
		defer ses.workers.Close()
		ses.pool = []*serverConn{sc}
		contribs, firstErr := ses.collect(1, numParams)
		if firstErr != nil {
			if len(contribs) != 0 {
				t.Fatalf("collect surfaced an error and %d contributions", len(contribs))
			}
			var re *RoundError
			if !errors.As(firstErr, &re) {
				t.Fatalf("collect error is %T, want *RoundError: %v", firstErr, firstErr)
			}
			if re.Client != 7 {
				t.Fatalf("RoundError names client %d, want the child hop 7", re.Client)
			}
			if re.Phase != PhaseCollect {
				t.Fatalf("RoundError phase %v, want %v", re.Phase, PhaseCollect)
			}
			return
		}
		// The collect claimed success: the contribution must be whole.
		if len(contribs) != 1 {
			t.Fatalf("no error but %d contributions", len(contribs))
		}
		c := contribs[0]
		switch {
		case c.sums != nil:
			if len(c.sums) != numParams || c.leaves < 1 {
				t.Fatalf("partial relay accepted: %d sums, %d leaves", len(c.sums), c.leaves)
			}
		case c.params != nil:
			if len(c.params) != numParams || c.leaves != 1 {
				t.Fatalf("partial update accepted: %d params, %d leaves", len(c.params), c.leaves)
			}
		default:
			t.Fatal("empty contribution accepted")
		}
	})
}

// codecPair builds a connected encoder/decoder state pair for one wire
// direction under the codec, as the two ends of a connection would hold.
func codecPair(c Codec) (enc, dec *codecState) {
	return newCodecState(c, streamDown), newCodecState(c, streamDown)
}

// FuzzDeltaRoundTrip drives a delta-codec connection with two successive
// models derived from fuzz input: both messages must reconstruct
// bit-exactly on the decode side (the codec's defining guarantee), and
// feeding the decoder arbitrary bytes must error or succeed without
// panicking.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 192, 255}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{}, []byte{9, 9})
	f.Add([]byte{0, 0, 128, 127, 0, 0, 128, 255}, []byte{0, 0, 0, 0}) // ±Inf then zeros
	f.Fuzz(func(t *testing.T, first, second []byte) {
		enc, dec := codecPair(DeltaCodec())
		// Successive models must share a length on a live connection; trim
		// the second to the first's shape.
		p1 := paramsFromBytes(first)
		p2 := paramsFromBytes(second)
		for len(p2) < len(p1) {
			p2 = append(p2, 0)
		}
		p2 = p2[:len(p1)]
		for round, in := range [][]float64{p1, p2} {
			payload := append([]byte(nil), enc.encodePayload(in)...)
			out, err := dec.decodePayload(nil, len(in), payload)
			if err != nil {
				t.Fatalf("round %d: decode of a fresh delta payload: %v", round, err)
			}
			for i := range in {
				if !sameWireValue(in[i], out[i]) {
					t.Fatalf("round %d param %d: %v -> %v (delta must be bit-exact)", round, i, in[i], out[i])
				}
			}
		}
		// Totality: arbitrary bytes through a delta reader never panic.
		hostile := newCodecState(DeltaCodec(), streamUp)
		var m message
		_, _ = hostile.readMessage(bufio.NewReader(bytes.NewReader(second)), &m)
	})
}

// FuzzQuantRoundTrip drives a quantized-delta connection with fuzz-derived
// models: whatever the values (including NaN and ±Inf), encode and decode
// must never panic, and the decoder's reconstruction must equal the
// encoder's shadow bit-for-bit — the invariant that keeps the two ends of
// a connection in sync and the error-feedback accumulator truthful.
func FuzzQuantRoundTrip(f *testing.F) {
	f.Add(uint8(8), []byte{0, 0, 128, 63, 205, 204, 76, 62}, []byte{3, 1, 4, 1})
	f.Add(uint8(16), []byte{0, 0, 192, 255, 0, 0, 128, 127}, []byte{})
	f.Fuzz(func(t *testing.T, bits uint8, first, second []byte) {
		width := 8
		if bits%2 == 1 {
			width = 16
		}
		codec, err := QuantCodec(width, int64(bits))
		if err != nil {
			t.Fatal(err)
		}
		enc, dec := codecPair(codec)
		p1 := paramsFromBytes(first)
		p2 := paramsFromBytes(second)
		for len(p2) < len(p1) {
			p2 = append(p2, 0)
		}
		p2 = p2[:len(p1)]
		for round, in := range [][]float64{p1, p2} {
			payload := append([]byte(nil), enc.encodePayload(in)...)
			out, err := dec.decodePayload(nil, len(in), payload)
			if err != nil {
				t.Fatalf("round %d: decode of a fresh quant payload: %v", round, err)
			}
			for i := range in {
				want := float64(math.Float32frombits(enc.shadow[i]))
				got := out[i]
				if math.IsNaN(want) && math.IsNaN(got) {
					continue
				}
				if math.Float64bits(want) != math.Float64bits(got) {
					t.Fatalf("round %d param %d: decoder reconstructed %v, encoder shadow holds %v", round, i, got, want)
				}
			}
		}
		// Totality: arbitrary bytes through a quant reader never panic.
		hostile := newCodecState(codec, streamUp)
		var m message
		_, _ = hostile.readMessage(bufio.NewReader(bytes.NewReader(first)), &m)
	})
}
