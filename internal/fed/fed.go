// Package fed implements the paper's federated policy optimisation
// (Algorithm 2, federated averaging after McMahan et al.): a central
// aggregation server and N homogeneous clients alternate, over R rounds,
// between local policy optimisation on each device and synchronous,
// unweighted parameter averaging on the server.
//
// Two transports are provided. The in-process orchestrator (Run) executes
// clients deterministically and is what the experiment harness uses. The TCP
// transport (Server/Dial) runs the identical protocol across real processes
// and sockets — the deployment shape of the paper, one process per edge
// device — exchanging parameter frames under a negotiated codec (codec.go):
// dense float32 by default, whose size matches the paper's reported 2.8 kB
// per transfer, with opt-in bit-exact delta and lossy quantized-delta
// encodings that cut the model-bearing bytes 2–4×. RunParallelCodec (and
// RunConfig.Codec) thread the same codec through the in-process
// orchestrator, emulating the wire's float32 semantics exactly — a dense or
// delta in-process run is bit-identical to the TCP run with the same codec.
//
// # Fault tolerance
//
// Real edge fleets have stragglers, dropped links and power-cycled devices,
// so the TCP transport degrades gracefully instead of wedging:
//
//   - Deadlines. Every server I/O phase is bounded: JoinTimeout on the
//     post-accept join frame, WriteTimeout on each broadcast write, and
//     RoundTimeout on each round's update read, all placed with the
//     injected Server.Clock (nil = time.Now).
//   - Drop, don't abort. A client that misses a deadline, answers for the
//     wrong round, sends the wrong shape, or whose socket dies is dropped
//     from the pool and its connection closed — a half-read frame can
//     therefore never desynchronise a later round, because a dropped
//     device always returns on a fresh connection.
//   - Quorum aggregation. A round commits when at least Server.Quorum
//     updates survived (default: all clients); the new global model is the
//     unweighted mean of exactly the survivors, in stable (client ID, join
//     sequence) order, so a dead device's stale parameters never leak into
//     the aggregate. A round below quorum aborts the protocol with a
//     *RoundError naming the round and phase.
//   - Rejoin. The accept loop runs for the whole session; a dropped device
//     that reconnects (Participant.Run does this automatically, under
//     capped exponential backoff with seeded jitter) is admitted into the
//     pool at the next round boundary and receives that round's broadcast.
//
// The in-process orchestrator mirrors these semantics: RunWithConfig
// applies the same quorum rule with a ClientErrorPolicy deciding whether a
// failing client aborts the run (FailFast) or just sits the round out
// (DropRound).
//
// # Goroutine ownership
//
// The TCP transport follows strict ownership rules, machine-checked where
// possible by the golaunch analyzer (cmd/fedlint):
//
//   - Server.Serve owns every connection and the accept loop. The accept
//     loop is launched once per Serve, owns the listener until it closes,
//     and hands joined connections to Serve through a channel it closes on
//     exit; Serve closes the listener on return and drains that channel,
//     so the loop can never outlive Serve nor leak a connection.
//   - Phase workers are launched only inside broadcast/collect, one per
//     client per phase, always joined through a sync.WaitGroup before the
//     phase's results are read; none outlives its round, and all loop
//     state a worker needs (client index, connection, round number) is
//     passed as arguments at launch, never captured.
//   - Workers write only to their own index of a pre-sized results slice
//     (errs[i], sent[i], updates[i]); the WaitGroup join is the
//     happens-before edge that publishes those writes to Serve.
//   - Shared counters (bytesSent, bytesRecv, drops, rejoins) are mutated
//     only under Server.mu; the OnDrop observer runs on the Serve
//     goroutine only.
//   - The client side (Conn, Participant) is single-goroutine by
//     construction: Dial, Participate, Run and Close must be called from
//     one goroutine.
package fed

import (
	"fmt"
	"math/rand"

	"fedpower/internal/nn"
	"fedpower/internal/par"
)

// Client is one federated participant: a device hosting a local power
// controller. TrainRound receives the current global model, performs the
// round's local optimisation (T environment steps with periodic updates, in
// the paper's instantiation), and returns the locally optimised parameters.
// The returned slice is copied by the orchestrator, so implementations may
// return their live parameter vector.
type Client interface {
	TrainRound(round int, global []float64) ([]float64, error)
}

// ClientFunc adapts a plain function to the Client interface.
type ClientFunc func(round int, global []float64) ([]float64, error)

// TrainRound calls f.
func (f ClientFunc) TrainRound(round int, global []float64) ([]float64, error) {
	return f(round, global)
}

// RoundHook is invoked after every aggregation with the 1-based round number
// and the new global model; the experiment harness uses it to run the
// per-round greedy evaluation of §IV-A. The slice must not be retained.
type RoundHook func(round int, global []float64)

// Run executes R rounds of federated averaging over the given clients,
// starting from (and finally overwriting) the global parameter vector:
//
//	for r = 1..R:
//	    broadcast θ_r to all clients
//	    each client locally optimises and returns θ_r^n
//	    θ_{r+1} = 1/N · Σ_n θ_r^n        (synchronous, unweighted)
//
// Clients are executed sequentially in slice order, which makes experiment
// runs bit-for-bit reproducible; the aggregation result is identical to a
// parallel execution because FedAvg only consumes the end-of-round
// parameters. hook may be nil.
func Run(global []float64, clients []Client, rounds int, hook RoundHook) error {
	return RunParallel(global, clients, rounds, 1, hook)
}

// RunParallel is Run with up to width clients training concurrently within
// each round. Every client owns its slot in the round's results, the
// aggregation consumes the slots in stable client order, and the round
// barrier (all clients finish before averaging) is unchanged — so the
// averaged parameters, and therefore the entire run, are bit-identical to
// the sequential Run whatever the scheduling. Clients must not share
// mutable state with each other for this to hold (the experiment harness's
// devices derive independent RNG streams per client). width <= 1 runs
// sequentially; hook always runs on the calling goroutine.
func RunParallel(global []float64, clients []Client, rounds, width int, hook RoundHook) error {
	if len(clients) == 0 {
		return fmt.Errorf("fed: no clients")
	}
	if rounds <= 0 {
		return fmt.Errorf("fed: round count %d must be positive", rounds)
	}
	return run(global, clients, nil, rounds, width, Codec{}, hook)
}

// RunParallelCodec is RunParallel with every client's exchange passed
// through the parameter codec, emulating the TCP transport's wire semantics
// in process: broadcasts reach clients as the decoded wire view (float64
// values of float32 wire parameters) and updates are aggregated from their
// decoded wire views, with per-client per-direction codec state exactly as
// a fleet of real connections would hold. For the lossless codecs the run
// is bit-identical to the TCP federation under the same codec at any width.
// The zero Codec disables emulation, making this identical to RunParallel.
func RunParallelCodec(global []float64, clients []Client, rounds, width int, codec Codec, hook RoundHook) error {
	if len(clients) == 0 {
		return fmt.Errorf("fed: no clients")
	}
	if rounds <= 0 {
		return fmt.Errorf("fed: round count %d must be positive", rounds)
	}
	return run(global, clients, nil, rounds, width, codec, hook)
}

// RunWeighted is Run with per-client aggregation weights — the original
// FedAvg formulation, where each client counts proportionally to its local
// sample volume. Weights must be non-negative with a positive sum. The
// paper's protocol is the unweighted special case ("it is unweighted,
// giving the same importance to each client", §III-B).
func RunWeighted(global []float64, clients []Client, weights []float64, rounds int, hook RoundHook) error {
	if len(clients) == 0 {
		return fmt.Errorf("fed: no clients")
	}
	if rounds <= 0 {
		return fmt.Errorf("fed: round count %d must be positive", rounds)
	}
	if len(weights) != len(clients) {
		return fmt.Errorf("fed: %d weights for %d clients", len(weights), len(clients))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("fed: negative weight %v for client %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("fed: aggregation weights sum to zero")
	}
	return run(global, clients, weights, rounds, 1, Codec{}, hook)
}

// RunSampled executes federated averaging with partial participation: each
// round, every client is included independently with probability fraction
// (at least one is always included — an empty round would stall the
// protocol). This is the client-sampling dimension of the original FedAvg
// (McMahan et al.'s parameter C); the paper's §III-B setting — "each client
// participates in all R rounds" — is fraction = 1. Sampling draws from rng
// so runs are reproducible.
func RunSampled(global []float64, clients []Client, fraction float64, rounds int, rng *rand.Rand, hook RoundHook) error {
	if len(clients) == 0 {
		return fmt.Errorf("fed: no clients")
	}
	if rounds <= 0 {
		return fmt.Errorf("fed: round count %d must be positive", rounds)
	}
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("fed: participation fraction %v out of (0,1]", fraction)
	}
	if rng == nil {
		return fmt.Errorf("fed: RunSampled requires a random source")
	}

	locals := make([][]float64, 0, len(clients))
	broadcast := make([]float64, len(global))
	for r := 1; r <= rounds; r++ {
		copy(broadcast, global)
		locals = locals[:0]
		participating := make([]int, 0, len(clients))
		for i := range clients {
			if rng.Float64() < fraction {
				participating = append(participating, i)
			}
		}
		if len(participating) == 0 {
			participating = append(participating, rng.Intn(len(clients)))
		}
		for _, i := range participating {
			updated, err := clients[i].TrainRound(r, broadcast)
			if err != nil {
				return fmt.Errorf("fed: round %d client %d: %w", r, i, err)
			}
			if len(updated) != len(global) {
				return fmt.Errorf("fed: round %d client %d returned %d params, want %d", r, i, len(updated), len(global))
			}
			locals = append(locals, append([]float64(nil), updated...))
		}
		nn.AverageParams(global, locals...)
		if hook != nil {
			hook(r, global)
		}
	}
	return nil
}

// ClientErrorPolicy decides what RunWithConfig does when a client's
// TrainRound fails (or returns the wrong parameter shape).
type ClientErrorPolicy int

const (
	// FailFast aborts the run on the first client error — Run's behavior,
	// and the right policy when clients are in-process and a failure means
	// a bug rather than a flaky device.
	FailFast ClientErrorPolicy = iota
	// DropRound excludes the failing client from the current round's
	// average; the client is offered the next round's broadcast again. This
	// mirrors the TCP server's drop-and-rejoin semantics.
	DropRound
)

// RunConfig configures RunWithConfig, the fault-tolerant in-process
// orchestrator.
type RunConfig struct {
	// Rounds is the number of federated rounds R.
	Rounds int
	// Quorum is the minimum number of successful client updates a round
	// needs to commit; 0 means all clients. Only meaningful with DropRound
	// (under FailFast any failure aborts before the quorum check).
	Quorum int
	// OnClientError selects the failure policy; the zero value is
	// FailFast.
	OnClientError ClientErrorPolicy
	// Hook, if non-nil, runs after every aggregation.
	Hook RoundHook
	// Parallelism bounds how many clients train concurrently within a
	// round; <= 1 (the zero value) runs them sequentially. Results are
	// bit-identical at any width: survivors are averaged in stable client
	// order and the quorum decision reads the joined round's outcome.
	Parallelism int
	// Codec, when explicitly constructed (DenseCodec, DeltaCodec,
	// QuantCodec, ParseCodec), passes every exchange through the parameter
	// codec as RunParallelCodec does; the zero value keeps the historical
	// raw float64 exchange.
	Codec Codec
}

// RunWithConfig executes federated averaging with the TCP transport's
// quorum/dropout semantics: each round every client is offered the
// broadcast; under DropRound a failing client is excluded from that round's
// aggregation (its error is absorbed) and the round commits as long as at
// least Quorum updates succeeded, averaging exactly the survivors. A round
// below quorum aborts with a *RoundError wrapping the first client failure.
func RunWithConfig(global []float64, clients []Client, cfg RunConfig) error {
	if len(clients) == 0 {
		return fmt.Errorf("fed: no clients")
	}
	if cfg.Rounds <= 0 {
		return fmt.Errorf("fed: round count %d must be positive", cfg.Rounds)
	}
	if cfg.Quorum < 0 || cfg.Quorum > len(clients) {
		return fmt.Errorf("fed: quorum %d out of [0,%d]", cfg.Quorum, len(clients))
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = len(clients)
	}

	broadcast := make([]float64, len(global))
	locals := make([][]float64, 0, len(clients))
	slots := make([][]float64, len(clients))
	for i := range slots {
		slots[i] = make([]float64, len(global))
	}
	links := newCodecLinks(cfg.Codec, len(clients))
	clientErrs := make([]error, len(clients))
	for r := 1; r <= cfg.Rounds; r++ {
		copy(broadcast, global)
		err := par.ForEach(cfg.Parallelism, len(clients), func(i int) error {
			clientErrs[i] = nil
			view := broadcast
			if links != nil {
				// Wire emulation: the client sees the decoded broadcast, as
				// over TCP. A codec failure is a harness bug, not a flaky
				// device, so it aborts regardless of the error policy.
				var cerr error
				if view, cerr = links[i].broadcast(broadcast); cerr != nil {
					return &RoundError{Round: r, Phase: PhaseBroadcast, Client: i, Err: cerr}
				}
			}
			updated, err := clients[i].TrainRound(r, view)
			if err == nil && len(updated) != len(global) {
				err = fmt.Errorf("returned %d params, want %d", len(updated), len(global))
			}
			if err != nil {
				wrapped := &RoundError{Round: r, Phase: PhaseTrain, Client: i, Err: err}
				if cfg.OnClientError == FailFast {
					return wrapped
				}
				// DropRound absorbs the failure: record it in the
				// client's slot and let the quorum decision below judge
				// the joined round.
				clientErrs[i] = wrapped
				return nil
			}
			if links != nil {
				decoded, cerr := links[i].update(updated)
				if cerr != nil {
					return &RoundError{Round: r, Phase: PhaseCollect, Client: i, Err: cerr}
				}
				updated = decoded
			}
			copy(slots[i], updated)
			return nil
		})
		if err != nil {
			return err
		}
		// Collect survivors in stable client order — the order, not the
		// completion sequence, determines the average.
		locals = locals[:0]
		var firstErr error
		for i := range clients {
			if clientErrs[i] != nil {
				if firstErr == nil {
					firstErr = clientErrs[i]
				}
				continue
			}
			locals = append(locals, slots[i])
		}
		if len(locals) < quorum {
			return &RoundError{Round: r, Phase: PhaseCollect, Client: -1,
				Err: fmt.Errorf("%d of %d clients delivered, quorum %d: %w",
					len(locals), len(clients), quorum, firstErr)}
		}
		nn.AverageParams(global, locals...)
		if cfg.Hook != nil {
			cfg.Hook(r, global)
		}
	}
	return nil
}

// newCodecLinks builds one wire-emulation link per client for an active
// codec, or nil when the codec is the zero value (raw float64 exchange).
// Each link is touched only by its own client's worker goroutine, so the
// emulated wire is race-free at any parallel width.
func newCodecLinks(codec Codec, n int) []*codecLink {
	if !codec.active() {
		return nil
	}
	links := make([]*codecLink, n)
	for i := range links {
		links[i] = newCodecLink(codec, i)
	}
	return links
}

// run drives the round loop; a nil weights slice selects the unweighted
// average. Within a round, up to width clients train concurrently; each
// writes only its own locals slot (and its own codec link, under wire
// emulation) and reads only the shared broadcast snapshot, and the
// aggregation averages the slots in client order after the pool has joined.
func run(global []float64, clients []Client, weights []float64, rounds, width int, codec Codec, hook RoundHook) error {
	locals := make([][]float64, len(clients))
	for i := range locals {
		locals[i] = make([]float64, len(global))
	}
	links := newCodecLinks(codec, len(clients))
	broadcast := make([]float64, len(global))
	for r := 1; r <= rounds; r++ {
		copy(broadcast, global)
		err := par.ForEach(width, len(clients), func(i int) error {
			view := broadcast
			if links != nil {
				var cerr error
				if view, cerr = links[i].broadcast(broadcast); cerr != nil {
					return fmt.Errorf("fed: round %d client %d: %w", r, i, cerr)
				}
			}
			updated, err := clients[i].TrainRound(r, view)
			if err != nil {
				return fmt.Errorf("fed: round %d client %d: %w", r, i, err)
			}
			if len(updated) != len(global) {
				return fmt.Errorf("fed: round %d client %d returned %d params, want %d", r, i, len(updated), len(global))
			}
			if links != nil {
				decoded, cerr := links[i].update(updated)
				if cerr != nil {
					return fmt.Errorf("fed: round %d client %d: %w", r, i, cerr)
				}
				updated = decoded
			}
			copy(locals[i], updated)
			return nil
		})
		if err != nil {
			return err
		}
		if weights == nil {
			nn.AverageParams(global, locals...)
		} else {
			nn.WeightedAverageParams(global, locals, weights)
		}
		if hook != nil {
			hook(r, global)
		}
	}
	return nil
}
