package fed

import (
	"bufio"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestParticipantBackoffResetOnRejoin pins the redial schedule under a fake
// clock: a successful re-join acknowledgment (the dial and join frame going
// through) must reset the failure budget just like a received broadcast
// does, so a device that reconnects between broadcasts and then fails again
// restarts its backoff from the base delay instead of resuming an inflated
// schedule.
func TestParticipantBackoffResetOnRejoin(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Scripted server: the first accepted connection is joined and then
	// slammed shut before any broadcast (a rejoin without progress); the
	// second delivers the final model.
	go func() {
		c1, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = readMessage(bufio.NewReader(c1)) // join
		_ = c1.Close()

		c2, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = readMessage(bufio.NewReader(c2)) // join
		_, _ = writeMessage(bufio.NewWriter(c2), message{kind: msgDone, round: 1, params: []float64{42}})
		_ = c2.Close()
	}()

	const base = 10 * time.Millisecond
	var sleeps []time.Duration
	dials := 0
	p := &Participant{
		Addr: ln.Addr().String(),
		ID:   9,
		Retry: Backoff{
			Attempts: 10,
			Base:     base,
			Sleep:    func(d time.Duration) { sleeps = append(sleeps, d) },
		},
		Dialer: func(addr string) (net.Conn, error) {
			dials++
			switch dials {
			case 1, 2, 4, 5:
				return nil, errors.New("injected dial failure")
			}
			return net.Dial("tcp", addr)
		},
	}

	final, err := p.Run(ClientFunc(func(round int, global []float64) ([]float64, error) {
		t.Error("trainer ran; the scripted server never broadcasts")
		return global, nil
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(final) != 1 || final[0] != 42 {
		t.Fatalf("final = %v, want [42]", final)
	}

	// Two dial failures climb the schedule; the successful join on dial 3
	// resets it, so the post-disconnect redials climb from base again. An
	// un-reset budget would have continued 4·base, 8·base, 16·base — and the
	// pre-fix behaviour (reset only on broadcast) reproduces exactly that,
	// since the first connection dies before any broadcast arrives.
	want := []time.Duration{base, 2 * base, base, 2 * base, 4 * base}
	if !reflect.DeepEqual(sleeps, want) {
		t.Fatalf("redial schedule %v, want %v", sleeps, want)
	}
	if p.Reconnects() != 1 {
		t.Errorf("reconnects = %d, want 1", p.Reconnects())
	}
}

// TestParticipantFallbackRotation pins the address rotation: when the
// primary refuses connections, the participant moves to the next fallback
// and sticks with whichever address accepted.
func TestParticipantFallbackRotation(t *testing.T) {
	var dialed []string
	p := &Participant{
		Addr:      "primary:1",
		Fallbacks: []string{"fallback:1", "fallback:2"},
		Retry: Backoff{
			Attempts: 4,
			Sleep:    func(time.Duration) {},
		},
		Dialer: func(addr string) (net.Conn, error) {
			dialed = append(dialed, addr)
			return nil, errors.New("refused")
		},
	}
	if _, err := p.Run(ClientFunc(func(int, []float64) ([]float64, error) { return nil, nil })); err == nil {
		t.Fatal("Run succeeded with every address refusing")
	}
	want := []string{"primary:1", "fallback:1", "fallback:2", "primary:1"}
	if !reflect.DeepEqual(dialed, want) {
		t.Fatalf("dial order %v, want %v", dialed, want)
	}
}
