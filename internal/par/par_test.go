package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, width := range []int{0, 1, 2, 4, 16, 100} {
		n := 37
		counts := make([]atomic.Int64, n)
		err := ForEach(width, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("width %d: unexpected error %v", width, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("width %d: task %d ran %d times", width, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestForEachReturnsLowestIndexError pins the deterministic error contract:
// whatever the scheduling, the reported error is the one a sequential run
// would surface first.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		err := ForEach(width, 20, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("width %d: got %v, want lowest-index error from task 7", width, err)
		}
	}
}

// TestForEachSequentialStopsEarly: width 1 must not run tasks past the
// first failure, matching a plain loop.
func TestForEachSequentialStopsEarly(t *testing.T) {
	ran := 0
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("ran %d tasks (err %v), want 4 with error", ran, err)
	}
}

// TestForEachPanicPropagates: a panicking task must not strand the join
// barrier; the panic resurfaces on the caller as a *TaskPanic carrying the
// task index and original value, at every pool width.
func TestForEachPanicPropagates(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		func() {
			defer func() {
				v := recover()
				tp, ok := v.(*TaskPanic)
				if !ok {
					t.Fatalf("width %d: recovered %T (%v), want *TaskPanic", width, v, v)
				}
				if tp.Index != 5 || tp.Value != "kaboom" {
					t.Fatalf("width %d: got TaskPanic{%d, %v}, want {5, kaboom}", width, tp.Index, tp.Value)
				}
				if msg := tp.Error(); msg != "par: task 5 panicked: kaboom" {
					t.Fatalf("width %d: message %q", width, msg)
				}
			}()
			_ = ForEach(width, 12, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatalf("width %d: ForEach returned instead of panicking", width)
		}()
	}
}

// TestForEachPanicLowestIndexWins: with several panicking tasks, the one a
// sequential run would have hit first is the one re-raised; panics at a
// lower index beat errors at a higher one, and every non-panicking task
// still runs to completion before the pool unwinds.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	var ran atomic.Int64
	defer func() {
		tp, ok := recover().(*TaskPanic)
		if !ok || tp.Index != 3 {
			t.Fatalf("recovered %v, want *TaskPanic at index 3", tp)
		}
		if got := ran.Load(); got != 18 {
			t.Fatalf("%d non-panicking tasks ran, want 18 (join barrier must complete)", got)
		}
	}()
	_ = ForEach(4, 20, func(i int) error {
		if i == 3 || i == 11 {
			panic(i)
		}
		ran.Add(1)
		if i == 7 {
			return errors.New("error after the panic index")
		}
		return nil
	})
	t.Fatal("ForEach returned instead of panicking")
}

// TestForEachSlotWritesPublished: writes into index-owned slots must be
// visible after ForEach returns (the WaitGroup join is the happens-before
// edge).
func TestForEachSlotWritesPublished(t *testing.T) {
	n := 200
	out := make([]int, n)
	if err := ForEach(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestPoolRunsEveryIndexOnce: a persistent pool must cover every index
// exactly once per phase at any width, including widths above n and the
// inline sequential mode, across many reuses of the same workers.
func TestPoolRunsEveryIndexOnce(t *testing.T) {
	for _, width := range []int{0, 1, 2, 4, 16, 100} {
		n := 37
		counts := make([]atomic.Int64, n)
		p := NewPool(func(i int) { counts[i].Add(1) })
		for phase := 1; phase <= 3; phase++ {
			p.Run(width, n)
			for i := range counts {
				if c := counts[i].Load(); c != int64(phase) {
					t.Fatalf("width %d phase %d: task %d ran %d times", width, phase, i, c)
				}
			}
		}
		p.Close()
	}
}

// TestPoolPhaseSizesVary: one pool must serve phases of different sizes
// and widths back to back — the server's broadcast (pool-sized) and
// accumulate (shard-count-sized) phases share one pool.
func TestPoolPhaseSizesVary(t *testing.T) {
	var total atomic.Int64
	p := NewPool(func(i int) { total.Add(int64(i) + 1) })
	defer p.Close()
	want := int64(0)
	for _, n := range []int{5, 64, 1, 0, 17, 64} {
		p.Run(8, n)
		want += int64(n) * int64(n+1) / 2
	}
	if got := total.Load(); got != want {
		t.Fatalf("phases summed %d, want %d", got, want)
	}
}

// TestPoolSlotWritesPublished: writes a task makes to its own slot must be
// visible to the coordinator after Run returns (the join barrier is the
// happens-before edge), and coordinator writes between phases must be
// visible to the workers (the release token is the other edge).
func TestPoolSlotWritesPublished(t *testing.T) {
	n := 64
	in := make([]int, n)
	out := make([]int, n)
	p := NewPool(func(i int) { out[i] = in[i] * 2 })
	defer p.Close()
	for phase := 1; phase <= 4; phase++ {
		for i := range in {
			in[i] = phase*1000 + i
		}
		p.Run(8, n)
		for i := range out {
			if out[i] != in[i]*2 {
				t.Fatalf("phase %d: slot %d = %d, want %d", phase, i, out[i], in[i]*2)
			}
		}
	}
}

// TestPoolPanicLowestIndexWins: a panicking task must not strand the pool,
// every index still runs, and the lowest-index panic is re-raised as a
// *TaskPanic — after which the pool remains usable.
func TestPoolPanicLowestIndexWins(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		n := 20
		counts := make([]atomic.Int64, n)
		p := NewPool(func(i int) {
			counts[i].Add(1)
			if i == 5 || i == 11 {
				panic(fmt.Sprintf("task %d exploded", i))
			}
		})
		func() {
			defer func() {
				v := recover()
				tp, ok := v.(*TaskPanic)
				if !ok {
					t.Fatalf("width %d: recovered %T (%v), want *TaskPanic", width, v, v)
				}
				// Width 1 stops at the first panic like a plain loop, so index
				// 5 is the only possible panic; parallel mode runs every index
				// and must still report the lowest.
				if tp.Index != 5 {
					t.Fatalf("width %d: panic from task %d, want lowest index 5", width, tp.Index)
				}
			}()
			p.Run(width, n)
		}()
		if width > 1 {
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("width %d: task %d ran %d times despite sibling panic", width, i, c)
				}
			}
		}
		// The pool must survive the panic: the next phase runs normally.
		clean := true
		func() {
			defer func() {
				if recover() != nil {
					clean = false
				}
			}()
			p.Run(width, 5)
		}()
		if width == 1 && !clean {
			t.Fatalf("width 1: pool unusable after recovered panic")
		}
		p.Close()
	}
}
