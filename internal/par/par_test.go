package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, width := range []int{0, 1, 2, 4, 16, 100} {
		n := 37
		counts := make([]atomic.Int64, n)
		err := ForEach(width, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("width %d: unexpected error %v", width, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("width %d: task %d ran %d times", width, i, c)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestForEachReturnsLowestIndexError pins the deterministic error contract:
// whatever the scheduling, the reported error is the one a sequential run
// would surface first.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		err := ForEach(width, 20, func(i int) error {
			if i == 7 || i == 13 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("width %d: got %v, want lowest-index error from task 7", width, err)
		}
	}
}

// TestForEachSequentialStopsEarly: width 1 must not run tasks past the
// first failure, matching a plain loop.
func TestForEachSequentialStopsEarly(t *testing.T) {
	ran := 0
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Fatalf("ran %d tasks (err %v), want 4 with error", ran, err)
	}
}

// TestForEachPanicPropagates: a panicking task must not strand the join
// barrier; the panic resurfaces on the caller as a *TaskPanic carrying the
// task index and original value, at every pool width.
func TestForEachPanicPropagates(t *testing.T) {
	for _, width := range []int{1, 2, 8} {
		func() {
			defer func() {
				v := recover()
				tp, ok := v.(*TaskPanic)
				if !ok {
					t.Fatalf("width %d: recovered %T (%v), want *TaskPanic", width, v, v)
				}
				if tp.Index != 5 || tp.Value != "kaboom" {
					t.Fatalf("width %d: got TaskPanic{%d, %v}, want {5, kaboom}", width, tp.Index, tp.Value)
				}
				if msg := tp.Error(); msg != "par: task 5 panicked: kaboom" {
					t.Fatalf("width %d: message %q", width, msg)
				}
			}()
			_ = ForEach(width, 12, func(i int) error {
				if i == 5 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatalf("width %d: ForEach returned instead of panicking", width)
		}()
	}
}

// TestForEachPanicLowestIndexWins: with several panicking tasks, the one a
// sequential run would have hit first is the one re-raised; panics at a
// lower index beat errors at a higher one, and every non-panicking task
// still runs to completion before the pool unwinds.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	var ran atomic.Int64
	defer func() {
		tp, ok := recover().(*TaskPanic)
		if !ok || tp.Index != 3 {
			t.Fatalf("recovered %v, want *TaskPanic at index 3", tp)
		}
		if got := ran.Load(); got != 18 {
			t.Fatalf("%d non-panicking tasks ran, want 18 (join barrier must complete)", got)
		}
	}()
	_ = ForEach(4, 20, func(i int) error {
		if i == 3 || i == 11 {
			panic(i)
		}
		ran.Add(1)
		if i == 7 {
			return errors.New("error after the panic index")
		}
		return nil
	})
	t.Fatal("ForEach returned instead of panicking")
}

// TestForEachSlotWritesPublished: writes into index-owned slots must be
// visible after ForEach returns (the WaitGroup join is the happens-before
// edge).
func TestForEachSlotWritesPublished(t *testing.T) {
	n := 200
	out := make([]int, n)
	if err := ForEach(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}
