// Package par provides the deterministic worker pool behind the repo's
// parallel experiment engine. Every fan-out site in the codebase — the
// per-client training step of the in-process federation, the scenario,
// sweep-point and seed-replicate loops of the experiment harness — funnels
// through ForEach, so the concurrency discipline lives in one place:
//
//   - Tasks are index-addressed. A task may only write to state owned by
//     its index (its slot in a pre-sized results slice); consumers read the
//     slots in index order after the pool has joined. Stable consumption
//     order is what keeps floating-point aggregation bit-identical to a
//     sequential run regardless of scheduling.
//   - Workers are supervised: every goroutine signals completion through
//     one sync.WaitGroup joined before ForEach returns, so no task can
//     outlive the call that launched it (the golaunch analyzer checks
//     this).
//   - Errors are deterministic: the lowest-index task error is returned,
//     which is the same error a sequential run would have surfaced first.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TaskPanic is the panic value ForEach re-raises on the calling goroutine
// when a task panicked: the original panic value tagged with the index of
// the task that raised it. Workers recover task panics so the WaitGroup
// join can never deadlock on a dead worker; after the pool has joined, the
// lowest-index panic — the one a sequential run would have hit first — is
// re-raised on the caller.
type TaskPanic struct {
	// Index is the task index passed to the panicking task function.
	Index int
	// Value is the original value passed to panic.
	Value any
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", p.Index, p.Value)
}

// ForEach runs task(i) for every i in [0, n) using up to width concurrent
// workers and returns the lowest-index error, or nil.
//
// With width <= 1 (or n <= 1) the tasks run inline on the calling
// goroutine, stopping at the first error — the fully sequential mode the
// determinism tests compare against. With width > 1, all n tasks run even
// when one fails (tasks must therefore be side-effect-free on failure
// paths), and the error returned is the one the sequential mode would have
// returned: the first in index order.
//
// A panicking task never strands the pool: workers recover the panic,
// complete the join barrier, and ForEach re-panics on the caller with a
// *TaskPanic carrying the task index and the original panic value. When
// both panics and errors occur, the lowest-index event wins, matching what
// a sequential run would have surfaced first.
func ForEach(width, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if width > n {
		width = n
	}
	if width <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := runTask(task, i, nil); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	pans := make([]*TaskPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runTask(task, i, pans)
			}
		}()
	}
	wg.Wait()
	for i := range errs {
		if pans[i] != nil {
			panic(pans[i])
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// runTask executes one task, converting a panic into a *TaskPanic. In
// parallel mode (pans != nil) the panic is parked in the task's own slot so
// the worker survives to the join barrier; in sequential mode it is
// re-raised immediately, tagged with the index, matching the parallel
// contract.
func runTask(task func(i int) error, i int, pans []*TaskPanic) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if pans == nil {
				panic(&TaskPanic{Index: i, Value: v})
			}
			pans[i] = &TaskPanic{Index: i, Value: v}
		}
	}()
	return task(i)
}

// Pool is a persistent worker pool whose task is fixed at construction:
// the allocation-free counterpart of ForEach for hot loops that fan out
// every iteration (the server's per-round broadcast/collect/accumulate
// phases). A ForEach call allocates its error and panic slots and spawns
// fresh workers on every invocation; a Pool spawns each worker once, keeps
// it parked on a channel between phases, and reuses its panic scratch, so
// a steady-state Run performs zero allocations.
//
// The task obeys the same own-slot discipline as a ForEach task (the
// slotrace analyzer checks literals passed to NewPool exactly like ForEach
// tasks): it may only write state owned by its index, and consumers read
// the slots in index order after Run returns. Because the task is bound
// once, per-phase inputs travel through state the task reads — written by
// the coordinating goroutine strictly before Run and read strictly after
// the workers park again, with the release channel and the join barrier
// supplying the happens-before edges in each direction.
//
// Unlike ForEach the task returns no error: a pool phase is infallible
// control flow, and per-index failures belong in an own-slot error slice
// the coordinator folds after the join (which is how the server uses it).
// Panics keep ForEach's contract: every index still runs, and the
// lowest-index *TaskPanic is re-raised on the caller after the join.
//
// A Pool is owned by one coordinating goroutine: Run and Close must not be
// called concurrently.
type Pool struct {
	task    func(i int)
	work    chan struct{} // one token releases one worker for one phase
	done    sync.WaitGroup
	next    atomic.Int64
	n       int
	workers int // goroutines spawned so far; grows to the widest Run
	pans    []*TaskPanic
}

// NewPool returns a pool that will run task under the own-slot contract.
// No workers are spawned until the first parallel Run, so an idle pool
// (or one only ever run at width 1) costs nothing.
func NewPool(task func(i int)) *Pool {
	return &Pool{task: task, work: make(chan struct{})}
}

// Run executes task(i) for every i in [0, n) using up to width concurrent
// workers and returns once all n have finished. With width <= 1 or n == 1
// the tasks run inline on the calling goroutine — the sequential mode the
// bit-identity tests compare against. Workers are spawned lazily up to the
// widest width seen and kept for the pool's lifetime, so a steady-state
// Run allocates nothing.
func (p *Pool) Run(width, n int) {
	if n <= 0 {
		return
	}
	if width > n {
		width = n
	}
	if width <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			p.runInline(i)
		}
		return
	}
	if cap(p.pans) < n {
		// Panic slots are nil except between a panic and its re-raise (which
		// clears them), so growth is the only allocation Run can perform.
		p.pans = make([]*TaskPanic, n)
	}
	p.pans = p.pans[:n]
	p.n = n
	p.next.Store(0)
	for p.workers < width {
		p.workers++
		go p.worker()
	}
	p.done.Add(width)
	for i := 0; i < width; i++ {
		p.work <- struct{}{}
	}
	p.done.Wait()
	for i := 0; i < n; i++ {
		if tp := p.pans[i]; tp != nil {
			for j := range p.pans {
				p.pans[j] = nil
			}
			panic(tp)
		}
	}
}

// Close releases the pool's workers. The pool must not be run again.
func (p *Pool) Close() {
	close(p.work)
}

// worker parks on the release channel between phases; each token releases
// it for one phase, in which it drains indices from the shared counter and
// then rejoins the barrier. Receiving the token also publishes the
// coordinator's phase state (task inputs, n, cleared panic slots) to this
// worker, and the barrier publishes the worker's slot writes back.
func (p *Pool) worker() {
	for range p.work {
		for {
			i := int(p.next.Add(1)) - 1
			if i >= p.n {
				break
			}
			p.runOne(i)
		}
		p.done.Done()
	}
}

// runOne executes task(i) in parallel mode, parking a panic in the task's
// own slot so the worker survives to the join barrier.
func (p *Pool) runOne(i int) {
	defer func() {
		if v := recover(); v != nil {
			p.pans[i] = &TaskPanic{Index: i, Value: v}
		}
	}()
	p.task(i)
}

// runInline executes task(i) on the caller, re-raising a panic immediately
// as a *TaskPanic — the sequential mode's contract, matching runTask.
func (p *Pool) runInline(i int) {
	defer func() {
		if v := recover(); v != nil {
			panic(&TaskPanic{Index: i, Value: v})
		}
	}()
	p.task(i)
}
