// Package par provides the deterministic worker pool behind the repo's
// parallel experiment engine. Every fan-out site in the codebase — the
// per-client training step of the in-process federation, the scenario,
// sweep-point and seed-replicate loops of the experiment harness — funnels
// through ForEach, so the concurrency discipline lives in one place:
//
//   - Tasks are index-addressed. A task may only write to state owned by
//     its index (its slot in a pre-sized results slice); consumers read the
//     slots in index order after the pool has joined. Stable consumption
//     order is what keeps floating-point aggregation bit-identical to a
//     sequential run regardless of scheduling.
//   - Workers are supervised: every goroutine signals completion through
//     one sync.WaitGroup joined before ForEach returns, so no task can
//     outlive the call that launched it (the golaunch analyzer checks
//     this).
//   - Errors are deterministic: the lowest-index task error is returned,
//     which is the same error a sequential run would have surfaced first.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TaskPanic is the panic value ForEach re-raises on the calling goroutine
// when a task panicked: the original panic value tagged with the index of
// the task that raised it. Workers recover task panics so the WaitGroup
// join can never deadlock on a dead worker; after the pool has joined, the
// lowest-index panic — the one a sequential run would have hit first — is
// re-raised on the caller.
type TaskPanic struct {
	// Index is the task index passed to the panicking task function.
	Index int
	// Value is the original value passed to panic.
	Value any
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", p.Index, p.Value)
}

// ForEach runs task(i) for every i in [0, n) using up to width concurrent
// workers and returns the lowest-index error, or nil.
//
// With width <= 1 (or n <= 1) the tasks run inline on the calling
// goroutine, stopping at the first error — the fully sequential mode the
// determinism tests compare against. With width > 1, all n tasks run even
// when one fails (tasks must therefore be side-effect-free on failure
// paths), and the error returned is the one the sequential mode would have
// returned: the first in index order.
//
// A panicking task never strands the pool: workers recover the panic,
// complete the join barrier, and ForEach re-panics on the caller with a
// *TaskPanic carrying the task index and the original panic value. When
// both panics and errors occur, the lowest-index event wins, matching what
// a sequential run would have surfaced first.
func ForEach(width, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if width > n {
		width = n
	}
	if width <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := runTask(task, i, nil); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	pans := make([]*TaskPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runTask(task, i, pans)
			}
		}()
	}
	wg.Wait()
	for i := range errs {
		if pans[i] != nil {
			panic(pans[i])
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// runTask executes one task, converting a panic into a *TaskPanic. In
// parallel mode (pans != nil) the panic is parked in the task's own slot so
// the worker survives to the join barrier; in sequential mode it is
// re-raised immediately, tagged with the index, matching the parallel
// contract.
func runTask(task func(i int) error, i int, pans []*TaskPanic) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if pans == nil {
				panic(&TaskPanic{Index: i, Value: v})
			}
			pans[i] = &TaskPanic{Index: i, Value: v}
		}
	}()
	return task(i)
}
