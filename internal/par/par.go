// Package par provides the deterministic worker pool behind the repo's
// parallel experiment engine. Every fan-out site in the codebase — the
// per-client training step of the in-process federation, the scenario,
// sweep-point and seed-replicate loops of the experiment harness — funnels
// through ForEach, so the concurrency discipline lives in one place:
//
//   - Tasks are index-addressed. A task may only write to state owned by
//     its index (its slot in a pre-sized results slice); consumers read the
//     slots in index order after the pool has joined. Stable consumption
//     order is what keeps floating-point aggregation bit-identical to a
//     sequential run regardless of scheduling.
//   - Workers are supervised: every goroutine signals completion through
//     one sync.WaitGroup joined before ForEach returns, so no task can
//     outlive the call that launched it (the golaunch analyzer checks
//     this).
//   - Errors are deterministic: the lowest-index task error is returned,
//     which is the same error a sequential run would have surfaced first.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs task(i) for every i in [0, n) using up to width concurrent
// workers and returns the lowest-index error, or nil.
//
// With width <= 1 (or n <= 1) the tasks run inline on the calling
// goroutine, stopping at the first error — the fully sequential mode the
// determinism tests compare against. With width > 1, all n tasks run even
// when one fails (tasks must therefore be side-effect-free on failure
// paths), and the error returned is the one the sequential mode would have
// returned: the first in index order.
func ForEach(width, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if width > n {
		width = n
	}
	if width <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = task(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
