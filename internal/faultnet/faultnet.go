// Package faultnet injects deterministic network faults into net.Conn and
// net.Listener values, so the federation layer's failure handling can be
// tested the same way the rest of the reproduction is tested: seeded and
// bit-identical across runs.
//
// An Injector owns a seeded fault schedule. Every connection it wraps draws
// a private sub-stream from that schedule at wrap time, and each Read/Write
// on the wrapped connection consumes exactly one draw, so the sequence of
// injected faults on a connection is a pure function of (injector seed,
// wrap order, operation index) — independent of goroutine interleaving
// across connections. The injector records every injected fault in an event
// log that tests compare across runs to prove the schedule replays.
//
// Four faults are modelled, mirroring how real edge links die:
//
//   - delay: the operation completes only after an injected latency
//     (a straggler; pairs with the fed server's read deadlines);
//   - drop: the connection is closed before the operation runs
//     (a device power-cycling mid-round);
//   - truncate: the operation moves only a prefix of the requested bytes
//     and then the connection is closed (a frame cut mid-flight — the peer
//     observes a short read);
//   - close faults additionally exercise double-Close paths: a dropped
//     connection is already closed when its owner's deferred Close runs.
//
// The package never reads the wall clock; delays go through an injected
// sleep function (the noclock analyzer enforces this), and randomness only
// flows from the injector's seed (norand).
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// Kind identifies one injected fault.
type Kind uint8

const (
	// None: the operation proceeds untouched.
	None Kind = iota
	// Delay: the operation proceeds after Config.Delay of injected latency.
	Delay
	// Drop: the connection is closed and the operation fails.
	Drop
	// Truncate: a prefix of the bytes is moved, then the connection is
	// closed.
	Truncate
)

// String returns the fault name for logs and test failure messages.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrInjected is wrapped by every error the injector fabricates, so tests
// and callers can tell an injected fault from a genuine transport failure
// with errors.Is.
var ErrInjected = errors.New("faultnet: injected fault")

// Config sets the per-operation fault probabilities of an Injector. Exactly
// one uniform draw is consumed per Read/Write, partitioned as
// [0,Drop) → drop, [Drop,Drop+Truncate) → truncate,
// [Drop+Truncate,Drop+Truncate+Delay) → delay, rest → no fault.
type Config struct {
	// DropRate is the probability an operation kills the connection.
	DropRate float64
	// TruncateRate is the probability an operation moves only a prefix of
	// its bytes before the connection dies.
	TruncateRate float64
	// DelayRate is the probability an operation is delayed by Delay.
	DelayRate float64
	// Delay is the injected latency of a delay fault.
	Delay time.Duration
	// Sleep performs delay faults. It must be non-nil when DelayRate > 0;
	// production passes time.Sleep, tests pass a fake and observe the
	// requested durations. The package itself never touches the wall clock.
	Sleep func(time.Duration)
}

// Validate reports the first inconsistency in the configuration.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"DropRate", c.DropRate}, {"TruncateRate", c.TruncateRate}, {"DelayRate", c.DelayRate}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s %v out of [0,1]", p.name, p.v)
		}
	}
	if c.DropRate+c.TruncateRate+c.DelayRate > 1 {
		return fmt.Errorf("faultnet: fault rates sum to %v > 1",
			c.DropRate+c.TruncateRate+c.DelayRate)
	}
	if c.DelayRate > 0 && c.Sleep == nil {
		return fmt.Errorf("faultnet: DelayRate %v needs an injected Sleep", c.DelayRate)
	}
	if c.DelayRate > 0 && c.Delay <= 0 {
		return fmt.Errorf("faultnet: DelayRate %v needs a positive Delay", c.DelayRate)
	}
	return nil
}

// Event is one injected fault, identified by the connection's wrap sequence
// within its injector and the operation's sequence within the connection.
type Event struct {
	// Conn is the connection's 0-based wrap sequence within the injector.
	Conn int
	// Op is the 0-based operation index on that connection.
	Op int
	// Write distinguishes write operations from reads.
	Write bool
	// Kind is the injected fault (never None; untouched ops are not logged).
	Kind Kind
}

// Injector hands out fault-wrapped connections whose schedules derive from
// one seed. Safe for concurrent use; determinism of a connection's schedule
// additionally requires that Wrap calls happen in a fixed order (e.g. one
// injector per client, wrapping that client's successive reconnects).
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	conns  int
	events []Event
}

// NewInjector builds an injector with the given seed and fault
// configuration. Panics on an invalid configuration — a fault plan is test
// infrastructure, and a silently clamped rate would fake coverage.
func NewInjector(seed int64, cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Wrap returns c with the injector's next fault schedule attached. The
// wrapped connection consumes one schedule draw per Read/Write.
func (in *Injector) Wrap(c net.Conn) *Conn {
	in.mu.Lock()
	id := in.conns
	in.conns++
	// Each connection gets a private generator seeded from the injector
	// stream, so its op schedule is independent of other connections'
	// operation counts.
	sub := rand.New(rand.NewSource(in.rng.Int63()))
	in.mu.Unlock()
	return &Conn{inner: c, in: in, id: id, rng: sub}
}

// Listener wraps ln so every accepted connection is fault-wrapped by the
// injector, in accept order.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Events returns the injected-fault log, sorted by (Conn, Op) so the result
// is deterministic even when connections run on concurrent goroutines.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	out := append([]Event(nil), in.events...)
	in.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Conn != out[j].Conn {
			return out[i].Conn < out[j].Conn
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// Conns returns how many connections the injector has wrapped.
func (in *Injector) Conns() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.conns
}

func (in *Injector) record(e Event) {
	in.mu.Lock()
	in.events = append(in.events, e)
	in.mu.Unlock()
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// Conn is a fault-wrapped connection. All net.Conn methods other than
// Read/Write pass through to the wrapped connection.
type Conn struct {
	inner net.Conn
	in    *Injector
	id    int

	mu  sync.Mutex
	rng *rand.Rand
	ops int
}

var _ net.Conn = (*Conn)(nil)

// next draws the fault for the current operation and logs it.
func (c *Conn) next(write bool) Kind {
	c.mu.Lock()
	op := c.ops
	c.ops++
	u := c.rng.Float64()
	c.mu.Unlock()

	cfg := c.in.cfg
	var kind Kind
	switch {
	case u < cfg.DropRate:
		kind = Drop
	case u < cfg.DropRate+cfg.TruncateRate:
		kind = Truncate
	case u < cfg.DropRate+cfg.TruncateRate+cfg.DelayRate:
		kind = Delay
	default:
		return None
	}
	c.in.record(Event{Conn: c.id, Op: op, Write: write, Kind: kind})
	return kind
}

// Read applies the scheduled fault, then reads from the wrapped connection.
func (c *Conn) Read(p []byte) (int, error) {
	switch c.next(false) {
	case Drop:
		_ = c.inner.Close()
		return 0, fmt.Errorf("read: connection dropped: %w", ErrInjected)
	case Truncate:
		// Deliver a strict prefix of the request, then kill the connection:
		// the next read observes the death, exactly like a frame cut on the
		// wire.
		n := 0
		if len(p) > 1 {
			var err error
			n, err = c.inner.Read(p[:(len(p)+1)/2])
			if err != nil {
				return n, err
			}
		}
		_ = c.inner.Close()
		return n, nil
	case Delay:
		c.in.cfg.Sleep(c.in.cfg.Delay)
	}
	return c.inner.Read(p)
}

// Write applies the scheduled fault, then writes to the wrapped connection.
func (c *Conn) Write(p []byte) (int, error) {
	switch c.next(true) {
	case Drop:
		_ = c.inner.Close()
		return 0, fmt.Errorf("write: connection dropped: %w", ErrInjected)
	case Truncate:
		n, err := c.inner.Write(p[:len(p)/2])
		_ = c.inner.Close()
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("write: frame truncated after %d of %d bytes: %w",
			n, len(p), ErrInjected)
	case Delay:
		c.in.cfg.Sleep(c.in.cfg.Delay)
	}
	return c.inner.Write(p)
}

// Close closes the wrapped connection. After a drop or truncate fault this
// is a double close; the wrapped error is passed through untouched so
// owners exercise their close-error paths.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr passes through.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr passes through.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline passes through.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline passes through.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline passes through.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
