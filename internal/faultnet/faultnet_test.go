package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// driveOps consumes n operation draws on a wrapped conn over an in-memory
// pipe, alternating write and read, and returns the per-op outcomes. The
// peer end echoes whatever it receives.
func driveOps(t *testing.T, c *Conn, peer net.Conn, n int) []error {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Echo until the pipe dies; errors here are the test's signal on
		// the driving side, not failures.
		buf := make([]byte, 64)
		for {
			k, err := peer.Read(buf)
			if err != nil {
				return
			}
			if _, err := peer.Write(buf[:k]); err != nil {
				return
			}
		}
	}()
	outcomes := make([]error, 0, n)
	buf := make([]byte, 4)
	for i := 0; i < n; i++ {
		var err error
		if i%2 == 0 {
			_, err = c.Write([]byte{1, 2, 3, 4})
		} else {
			_, err = c.Read(buf)
		}
		outcomes = append(outcomes, err)
		if err != nil {
			// The schedule keeps advancing per op even after the conn died;
			// keep driving so op counts stay comparable.
			continue
		}
	}
	_ = c.Close()
	_ = peer.Close()
	wg.Wait()
	return outcomes
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero", Config{}, true},
		{"rates", Config{DropRate: 0.2, TruncateRate: 0.2}, true},
		{"negative", Config{DropRate: -0.1}, false},
		{"above one", Config{DelayRate: 1.5, Delay: time.Second, Sleep: func(time.Duration) {}}, false},
		{"sum above one", Config{DropRate: 0.6, TruncateRate: 0.6}, false},
		{"delay without sleep", Config{DelayRate: 0.5, Delay: time.Second}, false},
		{"delay without duration", Config{DelayRate: 0.5, Sleep: func(time.Duration) {}}, false},
		{"delay complete", Config{DelayRate: 0.5, Delay: time.Second, Sleep: func(time.Duration) {}}, true},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewInjectorPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted an invalid config")
		}
	}()
	NewInjector(1, Config{DropRate: 2})
}

// TestScheduleReplaysBitIdentically is the core determinism property: the
// same seed, wrap order and op sequence produce the same fault events.
func TestScheduleReplaysBitIdentically(t *testing.T) {
	run := func() []Event {
		in := NewInjector(42, Config{DropRate: 0.2, TruncateRate: 0.15, DelayRate: 0.25,
			Delay: time.Millisecond, Sleep: func(time.Duration) {}})
		for conn := 0; conn < 4; conn++ {
			a, b := net.Pipe()
			driveOps(t, in.Wrap(a), b, 20)
		}
		return in.Events()
	}
	first, second := run(), run()
	if len(first) == 0 {
		t.Fatal("no faults injected; rates too low for the op budget")
	}
	if len(first) != len(second) {
		t.Fatalf("replay produced %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestScheduleIndependentAcrossConns: a connection's schedule must not
// depend on how many ops other connections performed.
func TestScheduleIndependentAcrossConns(t *testing.T) {
	perConn := func(opsOnFirst int) []Event {
		in := NewInjector(7, Config{DropRate: 0.3})
		a1, b1 := net.Pipe()
		driveOps(t, in.Wrap(a1), b1, opsOnFirst)
		a2, b2 := net.Pipe()
		driveOps(t, in.Wrap(a2), b2, 30)
		var second []Event
		for _, e := range in.Events() {
			if e.Conn == 1 {
				second = append(second, e)
			}
		}
		return second
	}
	short, long := perConn(3), perConn(40)
	if len(short) != len(long) {
		t.Fatalf("conn 1 schedule changed with conn 0's op count: %d vs %d events", len(short), len(long))
	}
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("conn 1 event %d differs: %+v vs %+v", i, short[i], long[i])
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	events := func(seed int64) []Event {
		in := NewInjector(seed, Config{DropRate: 0.5})
		a, b := net.Pipe()
		driveOps(t, in.Wrap(a), b, 10)
		return in.Events()
	}
	a, b := events(1), events(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical fault schedules")
	}
}

func TestDropKillsConnection(t *testing.T) {
	in := NewInjector(1, Config{DropRate: 1})
	a, b := net.Pipe()
	c := in.Wrap(a)
	_, err := c.Write([]byte{1})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("dropped write error = %v, want ErrInjected", err)
	}
	// The peer observes the death as EOF/closed.
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after drop")
	}
	// The owner's own Close is now a double close; whether it errors is
	// transport-specific (TCP does, net.Pipe does not) — it must simply
	// pass the transport's answer through, not panic or block.
	_ = c.Close()
}

func TestTruncateWriteDeliversPrefixThenDies(t *testing.T) {
	in := NewInjector(1, Config{TruncateRate: 1})
	a, b := net.Pipe()
	c := in.Wrap(a)

	payload := []byte("0123456789abcdef")
	var wg sync.WaitGroup
	var got []byte
	wg.Add(1)
	go func() {
		defer wg.Done()
		data, _ := io.ReadAll(b)
		got = data
	}()
	n, err := c.Write(payload)
	wg.Wait()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated write error = %v, want ErrInjected", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("truncated write reported %d bytes, want %d", n, len(payload)/2)
	}
	if !bytes.Equal(got, payload[:len(payload)/2]) {
		t.Fatalf("peer received %q, want the %d-byte prefix", got, len(payload)/2)
	}
}

func TestTruncateReadDeliversPrefixThenDies(t *testing.T) {
	in := NewInjector(1, Config{TruncateRate: 1})
	a, b := net.Pipe()
	c := in.Wrap(a)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = b.Write([]byte("0123456789abcdef"))
	}()
	buf := make([]byte, 8)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("truncated read errored immediately: %v", err)
	}
	if n == 0 || n > len(buf)/2+1 {
		t.Fatalf("truncated read returned %d bytes, want a short prefix", n)
	}
	// The connection is dead now: the next read must fail, so a framed
	// decoder (io.ReadFull) can never block forever on the missing suffix.
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read after truncation succeeded")
	}
	wg.Wait()
}

func TestDelayUsesInjectedSleep(t *testing.T) {
	var slept []time.Duration
	in := NewInjector(1, Config{DelayRate: 1, Delay: 250 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }})
	a, b := net.Pipe()
	c := in.Wrap(a)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 1)
		_, _ = b.Read(buf)
	}()
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatalf("delayed write failed: %v", err)
	}
	wg.Wait()
	if len(slept) != 1 || slept[0] != 250*time.Millisecond {
		t.Fatalf("injected sleeps = %v, want one 250ms sleep", slept)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(3, Config{DropRate: 1})
	wrapped := in.Listener(ln)
	defer wrapped.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		// Wait for the server side to die.
		_, _ = c.Read(make([]byte, 1))
	}()
	c, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faultnet.Conn", c)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn read error = %v, want injected drop", err)
	}
	wg.Wait()
	if in.Conns() != 1 {
		t.Fatalf("injector wrapped %d conns, want 1", in.Conns())
	}
}

func TestNoFaultsPassThrough(t *testing.T) {
	in := NewInjector(9, Config{})
	a, b := net.Pipe()
	c := in.Wrap(a)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(b, buf); err == nil {
			_, _ = b.Write(buf)
		}
	}()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("clean write failed: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("clean read failed: %v", err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echoed %q", buf)
	}
	wg.Wait()
	if got := in.Events(); len(got) != 0 {
		t.Fatalf("zero-rate injector logged events: %+v", got)
	}
}
