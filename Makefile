# Convenience targets; `make check` is the same gate CI runs.

.PHONY: check build vet lint test race determinism fuzz

check:
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

lint:
	go run ./cmd/fedlint ./...

test:
	go test ./...

race:
	go test -race ./...

# Determinism gate: the resilience tests run twice and must replay
# bit-identically (fault schedules, zero-fault TCP results).
determinism:
	go test -run Resilience -count=2 ./internal/fed/... ./internal/experiment/...

# Extended fuzzing of the federation wire format (seed corpus always runs
# as part of `make test`).
fuzz:
	go test -fuzz=FuzzWireRoundTrip -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzReadMessage -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzFaultyReadMessage -fuzztime=30s ./internal/fed/
