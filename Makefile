# Convenience targets; `make check` is the same gate CI runs.

.PHONY: check build vet lint test race fuzz

check:
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

lint:
	go run ./cmd/fedlint ./...

test:
	go test ./...

race:
	go test -race ./internal/fed/... ./internal/experiment/...

# Extended fuzzing of the federation wire format (seed corpus always runs
# as part of `make test`).
fuzz:
	go test -fuzz=FuzzWireRoundTrip -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzReadMessage -fuzztime=30s ./internal/fed/
