# Convenience targets; `make check` is the same gate CI runs.

.PHONY: check build vet lint lint-sarif bench bench-lint bench-train test race determinism fuzz

check:
	./scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

# Timed so suite-cost regressions are visible at every invocation; CI
# additionally enforces a hard wall-clock budget (scripts/check.sh).
lint:
	time go run ./cmd/fedlint ./...

# Machine-readable findings for CI artifacts and SARIF viewers.
lint-sarif:
	go run ./cmd/fedlint -sarif ./...

# Benchmarks the analyzer suite (parse/type-check excluded) — the number
# the fedlint wall-clock budget guards.
bench-lint:
	go test -bench 'DefaultSuite|PrivacyTaint|WireBound' -benchmem -run XXX ./internal/lint/

# Hot-path benchmark gate: runs BenchmarkControlStepLatency,
# BenchmarkPolicyUpdate{,Batch}, BenchmarkReplayAdd and the
# BenchmarkWire{Encode,Decode,RoundTrip} wire-path benchmarks with
# -benchmem and -count=3 (gating on the per-benchmark minimum ns/op),
# records BENCH_<date>.json and fails on a >20 % ns/op regression — or any
# allocs/op increase — against the committed BENCH_baseline.json
# (scripts/benchdiff.sh).
bench:
	./scripts/benchdiff.sh

# Training-kernel benchmarks only — the mini-batch policy update on the
# batched kernels (its batch-size cost model) and the steady-state replay
# ring Add — the quick loop for kernel work, without the regression gate.
bench-train:
	go test -run '^$$' -bench 'BenchmarkPolicyUpdate$$|BenchmarkPolicyUpdateBatch$$|BenchmarkReplayAdd$$' -benchmem -count=3 .

test:
	go test ./...

race:
	go test -race ./...

# Determinism gate: the resilience tests run twice and must replay
# bit-identically (fault schedules, zero-fault TCP results), the parallel
# experiment engine must match sequential execution bit-for-bit, the
# codec bit-identity tests must reproduce the dense result through the
# delta codec — in-process and over TCP — twice over, the hierarchical
# aggregation trees (randomized in-process topologies and 2-/3-level TCP
# fleets) must reproduce the flat federation bit-for-bit, the batched
# training kernels (ForwardBatch/BackwardBatch, the batched controller
# update, and a whole Fig. 3 scenario) must reproduce the scalar kernels
# bit-for-bit, and the parallel aggregation plane (the server's round
# workers at widths 1/2/8 per codec, the parallel tree runner, and the TCP
# tree deployment at Parallelism 4) must reproduce the sequential runs
# bit-for-bit.
determinism:
	go test -run 'Resilience|ParallelMatchesSequential|ParallelAggregation|CodecDenseBitIdentical|CodecDeltaBitIdentical|TreeBitIdentical|BatchBitIdentical' -count=2 ./internal/fed/... ./internal/experiment/... ./internal/nn/... ./internal/core/... .

# Extended fuzzing of the federation wire format (seed corpus always runs
# as part of `make test`).
fuzz:
	go test -fuzz=FuzzWireRoundTrip -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzReadMessage -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzFaultyReadMessage -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzDeltaRoundTrip -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzQuantRoundTrip -fuzztime=30s ./internal/fed/
	go test -fuzz=FuzzRelayFrame -fuzztime=30s ./internal/fed/
