// Command feddevice runs one edge device of Fig. 1 as a standalone process:
// a simulated Jetson-Nano-class processor, a workload stream of the named
// applications, and the local RL power controller. It connects to a
// fedserver instance over TCP and participates in every federated round —
// T control steps of Algorithm 1 per round, then the model exchange.
package main

import (
	"flag"
	"log"
	"math/rand"
	"strings"
	"time"

	"fedpower"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feddevice: ")

	server := flag.String("server", "127.0.0.1:7070", "aggregation server address")
	apps := flag.String("apps", "fft,lu", "comma-separated training applications (SPLASH-2 names)")
	steps := flag.Int("steps", 100, "control steps per round T")
	interval := flag.Float64("interval", 0.5, "DVFS control interval in simulated seconds")
	seed := flag.Int64("seed", 42, "device random seed")
	id := flag.Uint("id", 0, "client ID: a stable aggregation slot across reconnects (0 = anonymous)")
	retries := flag.Int("retries", 3, "consecutive transport failures tolerated before giving up")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "initial reconnect backoff (doubles per consecutive failure)")
	retryMax := flag.Duration("retry-max", 5*time.Second, "reconnect backoff cap")
	save := flag.String("save", "", "write the final global model to this .fpm file")
	codecName := flag.String("codec", "dense", "wire codec — dense, delta, quant8 or quant16; must match the server's")
	flag.Parse()

	codec, err := fedpower.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	codec = codec.Seeded(*seed)

	var specs []fedpower.AppSpec
	for _, name := range strings.Split(*apps, ",") {
		spec, err := fedpower.AppByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, spec)
	}

	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(*seed)))
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(*seed+1)))
	stream := fedpower.NewStream(rand.New(rand.NewSource(*seed+2)), specs)

	// Bootstrap: load the first application and take one observation at the
	// mid-range level, as a default governor would.
	dev.Load(stream.Next())
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(*interval)

	var state []float64
	trainRound := func(round int, global []float64) ([]float64, error) {
		ctrl.SetModelParams(global)
		var reward float64
		for t := 0; t < *steps; t++ {
			if dev.Done() {
				dev.Load(stream.Next())
			}
			state = fedpower.StateVector(obs, state)
			action := ctrl.SelectAction(state)
			dev.SetLevel(action)
			obs = dev.Step(*interval)
			r := params.Reward.Reward(obs.NormFreq, obs.PowerW)
			ctrl.Observe(state, action, r)
			reward += r
		}
		log.Printf("round %d: avg training reward %.3f, tau %.3f, buffer %d/%d",
			round, reward/float64(*steps), ctrl.Tau(), ctrl.Buffer().Len(), ctrl.Buffer().Cap())
		return ctrl.ModelParams(), nil
	}

	// The resilient driver: it reconnects under capped exponential backoff
	// (jittered from the device seed so a recovering fleet spreads out) and
	// rejoins the federation at the next broadcast after a dropped link.
	part := &fedpower.Participant{
		Addr:  *server,
		ID:    uint32(*id),
		Codec: codec,
		Retry: fedpower.Backoff{
			Attempts: *retries,
			Base:     *retryBase,
			Max:      *retryMax,
			Jitter:   rand.New(rand.NewSource(*seed + 3)),
		},
	}
	log.Printf("participating via %s as device %d (codec %s), training on %s", *server, *id, codec, *apps)

	final, err := part.Run(fedpower.FederatedClientFunc(trainRound))
	if err != nil {
		log.Fatal(err)
	}
	ctrl.SetModelParams(final)
	if part.Reconnects() > 0 {
		log.Printf("survived %d reconnects", part.Reconnects())
	}
	log.Printf("training complete: %d params in final global model, %d B sent, %d B received",
		len(final), part.BytesSent(), part.BytesReceived())
	if *save != "" {
		if err := fedpower.SaveModel(*save, final); err != nil {
			log.Fatal(err)
		}
		log.Printf("final model saved to %s", *save)
	}
}
