// Command fedpower regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated substrate and prints plain-text
// renderings: reward curves as sparklines, tables as aligned columns.
//
// Usage:
//
//	fedpower [flags] <experiment>
//
// Experiments: fig2, fig3, fig4, table3, fig5, overhead, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fedpower"
	"fedpower/internal/experiment"
	"fedpower/internal/stats"
)

// csvDir, when non-empty, receives one CSV file per experiment.
var csvDir string

// writeCSV writes one experiment's data file when -csv is set.
func writeCSV(name string, write func(io.Writer) error) error {
	if csvDir == "" {
		return nil
	}
	path := filepath.Join(csvDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return fmt.Errorf("close %s: %w", path, cerr)
	}
	fmt.Printf("(csv written to %s)\n", path)
	return nil
}

func main() {
	rounds := flag.Int("rounds", 0, "override federated round count R (0 = paper default 100)")
	steps := flag.Int("steps", 0, "override steps per round T (0 = paper default 100)")
	seed := flag.Int64("seed", 1, "experiment root seed")
	evalEvery := flag.Int("eval-every", 0, "override run-to-completion evaluation cadence in rounds")
	quick := flag.Bool("quick", false, "reduced-budget run (30 rounds) for a fast look")
	traceApp := flag.String("app", "fft", "application for the trace experiment")
	traceFormat := flag.String("format", "csv", "trace output format: csv or jsonl")
	sweepDim := flag.String("dim", "lr", "sweep dimension: lr, tau, batch or width")
	replicates := flag.Int("n", 5, "number of independent seeds for the replicate experiment")
	dropRate := flag.Float64("drop-rate", 0.05, "resilience: per-I/O connection-drop probability")
	truncRate := flag.Float64("truncate-rate", 0.0, "resilience: per-I/O frame-truncation probability")
	quorum := flag.Int("quorum", 1, "resilience: minimum surviving updates per round (0 = all devices)")
	faultSeed := flag.Int64("fault-seed", 1, "resilience: fault-schedule seed")
	codecName := flag.String("codec", "dense", "resilience/tree: wire codec — dense, delta, quant8 or quant16")
	topologies := flag.String("topology", "500,10x50,4x5x25", "tree: comma-separated fan-out specs (\"500\" flat, \"4x5x25\" 3-level)")
	parallel := flag.Int("parallel", 0, "worker-pool width for experiment units and federated clients (0 = all CPUs, 1 = sequential; results are bit-identical at any width)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file after the run")
	flag.StringVar(&csvDir, "csv", "", "also write each experiment's data as CSV into this directory")
	flag.Usage = usage
	flag.Parse()

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fedpower:", err)
			os.Exit(1)
		}
	}

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	o := fedpower.DefaultOptions()
	o.Seed = *seed
	if *quick {
		o.Rounds = 30
	}
	if *rounds > 0 {
		o.Rounds = *rounds
	}
	if *steps > 0 {
		o.StepsPerRound = *steps
	}
	if *evalEvery > 0 {
		o.ExecEvalEvery = *evalEvery
	}
	o.Parallelism = *parallel

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedpower:", err)
		os.Exit(1)
	}

	start := time.Now()
	switch cmd := flag.Arg(0); cmd {
	case "fig2":
		err = runFig2(o)
	case "fig3":
		err = runFig3(o)
	case "fig4":
		err = runFig4(o)
	case "table3":
		err = runTable3(o)
	case "fig5":
		err = runFig5(o)
	case "overhead":
		err = runOverhead(o)
	case "governors":
		err = runGovernors(o)
	case "hetero":
		err = runHetero(o)
	case "privacy":
		err = runPrivacy(o)
	case "multicore":
		err = runMultiCore(o)
	case "trace":
		err = runTrace(o, *traceApp, *traceFormat)
	case "sweep":
		err = runSweep(o, *sweepDim)
	case "replicate":
		err = runReplicate(o, *replicates)
	case "resilience":
		err = runResilience(o, *dropRate, *truncRate, *quorum, *faultSeed, *codecName)
	case "tree":
		err = runTree(o, *topologies, *codecName)
	case "verify":
		err = runVerify(o)
	case "apps":
		err = runApps(o)
	case "platform":
		err = runPlatform(o)
	case "convergence":
		err = runConvergence(o)
	case "all":
		for _, f := range []func(fedpower.Options) error{runFig2, runFig3, runFig4, runTable3, runFig5, runOverhead, runGovernors, runHetero, runPrivacy, runMultiCore} {
			if err = f(o); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "fedpower: unknown experiment %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if perr := stopProfiles(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedpower:", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %v]\n", flag.Arg(0), time.Since(start).Round(time.Millisecond))
}

// startProfiles enables pprof profiling when requested. The returned stop
// function finalises both profiles; it must run before the process exits or
// the CPU profile is truncated and the heap profile never written.
func startProfiles(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close %s: %w", cpu, err)
			}
			fmt.Printf("(cpu profile written to %s)\n", cpu)
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			runtime.GC() // materialise live-heap statistics before the snapshot
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return fmt.Errorf("close %s: %w", mem, cerr)
			}
			fmt.Printf("(heap profile written to %s)\n", mem)
		}
		return nil
	}, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `Usage: fedpower [flags] <experiment>

Experiments (paper artefact each regenerates):
  fig2      reward-signal distribution over the V/f levels (Fig. 2)
  fig3      local-only vs federated reward curves, 3 scenarios (Fig. 3)
  fig4      mean selected frequency under each policy, scenario 2 (Fig. 4)
  table3    exec time / IPS / power vs Profit+CollabPolicy (Table III)
  fig5      per-application comparison, 6 training apps per device (Fig. 5)
  overhead  controller runtime overhead accounting (Sec. IV-C)
  governors federated RL vs classical OS governors and a power capper (extension)
  hetero    heterogeneous per-device power budgets (paper Sec. V future work)
  privacy   reward vs raw-trace exposure: local / federated / central [7]
  multicore 4-core shared-clock clusters with concurrent workloads (extension)
  trace     train, then dump one greedy episode of -app as -format on stdout
  sweep     hyper-parameter sensitivity sweep along -dim
  replicate repeat the Fig. 3 comparison across -n seeds (mean ± std)
  resilience federation over real TCP with injected faults: drops, rejoins, quorum
  tree      fleet-scale hierarchical aggregation over TCP: capacity per -topology

  verify    fast PASS/FAIL checklist of every headline reproduction claim
  convergence  rounds-to-threshold per scenario, federated vs local (Sec. III claim)
  apps      per-application characteristics, optima and execution times
  platform  the processor model: V/f table, voltages, power envelope
  all       the paper artefacts and extensions in sequence

Flags:
`)
	flag.PrintDefaults()
}

func runFig2(o fedpower.Options) error {
	fmt.Println("== Fig. 2: reward signal r(f, P) for P_crit=0.6 W, k_offset=0.05 W ==")
	rp := o.Core.Reward
	// Resolve the transition band [P_crit, P_crit+2k] finely.
	powers := []float64{
		0.40, 0.50, rp.PCritW,
		rp.PCritW + 0.5*rp.KOffsetW, rp.PCritW + rp.KOffsetW,
		rp.PCritW + 1.5*rp.KOffsetW, rp.PCritW + 2*rp.KOffsetW,
		rp.PCritW + 3*rp.KOffsetW,
	}
	res := experiment.RunFig2Powers(o.Table, rp, powers)
	if err := writeCSV("fig2.csv", func(w io.Writer) error { return fedpower.WriteFig2CSV(w, res) }); err != nil {
		return err
	}
	headers := []string{"f [MHz]"}
	for _, p := range res.PowerW {
		headers = append(headers, fmt.Sprintf("P=%.2fW", p))
	}
	var rows [][]string
	for k := len(res.FreqMHz) - 1; k >= 0; k-- {
		row := []string{fmt.Sprintf("%.1f", res.FreqMHz[k])}
		for _, r := range res.Reward[k] {
			row = append(row, fmt.Sprintf("%+.2f", r))
		}
		rows = append(rows, row)
	}
	fmt.Print(experiment.Table(headers, rows))
	return nil
}

func runFig3(o fedpower.Options) error {
	fmt.Printf("== Fig. 3: evaluation reward, local-only vs federated (R=%d rounds) ==\n", o.Rounds)
	res, err := fedpower.RunFig3(o)
	if err != nil {
		return err
	}
	for _, sc := range res.Scenarios {
		fmt.Printf("\nScenario %s  (device A: %v, device B: %v)\n",
			sc.Scenario.Name, sc.Scenario.Devices[0], sc.Scenario.Devices[1])
		fmt.Printf("  L%s-A  %s  avg %.3f\n", sc.Scenario.Name,
			experiment.Sparkline(experiment.RewardSeries(sc.Local[0]), 60, -1, 1),
			experiment.Mean(sc.Local[0], func(e experiment.RoundEval) float64 { return e.Reward }))
		fmt.Printf("  L%s-B  %s  avg %.3f\n", sc.Scenario.Name,
			experiment.Sparkline(experiment.RewardSeries(sc.Local[1]), 60, -1, 1),
			experiment.Mean(sc.Local[1], func(e experiment.RoundEval) float64 { return e.Reward }))
		fmt.Printf("  F%s    %s  avg %.3f\n", sc.Scenario.Name,
			experiment.Sparkline(experiment.RewardSeries(sc.Fed), 60, -1, 1),
			sc.AvgFedReward())
	}
	if err := writeCSV("fig3.csv", func(w io.Writer) error { return fedpower.WriteFig3CSV(w, res) }); err != nil {
		return err
	}
	pct, shifted := res.ImprovementPct()
	note := ""
	if shifted {
		note = " (reward-floor-shifted ratio)"
	}
	fmt.Printf("\nFederated vs local-only average reward improvement: %+.0f%%%s (paper: +57%%)\n", pct, note)
	return nil
}

func runFig4(o fedpower.Options) error {
	fmt.Printf("== Fig. 4: mean selected frequency during evaluation, scenario 2 (R=%d) ==\n", o.Rounds)
	scRes, err := fedpower.RunScenario(o, 1, fedpower.TableII()[1])
	if err != nil {
		return err
	}
	f4, err := fedpower.Fig4FromScenario(scRes)
	if err != nil {
		return err
	}
	if err := writeCSV("fig4.csv", func(w io.Writer) error { return fedpower.WriteFig4CSV(w, f4) }); err != nil {
		return err
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fMax := o.Table.MaxFreqMHz()
	fmt.Printf("  L2-A (water-ns/water-sp) %s  avg %.0f MHz\n",
		experiment.Sparkline(f4.LocalA, 60, 0, 1), avg(f4.LocalA)*fMax)
	fmt.Printf("  L2-B (ocean/radix)       %s  avg %.0f MHz\n",
		experiment.Sparkline(f4.LocalB, 60, 0, 1), avg(f4.LocalB)*fMax)
	fmt.Printf("  F2   (federated)         %s  avg %.0f MHz\n",
		experiment.Sparkline(f4.Fed, 60, 0, 1), avg(f4.Fed)*fMax)
	fmt.Println("\n(The policy trained only on the memory-bound ocean/radix pair selects")
	fmt.Println(" systematically higher frequencies, causing power violations on the")
	fmt.Println(" compute-bound evaluation applications.)")
	return nil
}

func runTable3(o fedpower.Options) error {
	fmt.Printf("== Table III: comparison with Profit+CollabPolicy (avg over %d scenarios) ==\n", len(fedpower.TableII()))
	res, err := fedpower.RunTable3(o)
	if err != nil {
		return err
	}
	if err := writeCSV("table3.csv", func(w io.Writer) error { return fedpower.WriteTable3CSV(w, res) }); err != nil {
		return err
	}
	rows := [][]string{
		{"Exec. Time [s]", fmt.Sprintf("%.2f (%+.0f%%)", res.OursExecS, res.ExecDeltaPct()), fmt.Sprintf("%.2f", res.BaseExecS), "24.24 (-20%)", "30.38"},
		{"IPS [x10^9]", fmt.Sprintf("%.3f (%+.0f%%)", res.OursIPS/1e9, res.IPSDeltaPct()), fmt.Sprintf("%.3f", res.BaseIPS/1e9), "0.92e6 (+17%)", "0.79e6"},
		{"Power [W]", fmt.Sprintf("%.3f (%+.0f%%)", res.OursPowerW, res.PowerDeltaPct()), fmt.Sprintf("%.3f", res.BasePowerW), "0.52 (+9%)", "0.47"},
	}
	fmt.Print(experiment.Table([]string{"Category", "Ours", "Profit+Collab", "paper Ours", "paper P+C"}, rows))
	fmt.Println("\n(Absolute IPS differs from the paper because the simulator counts all")
	fmt.Println(" retired instructions; the paper's counter setup reports ~10^6. The")
	fmt.Println(" ratios — who wins and by how much — are the reproduction target.)")
	return nil
}

func runFig5(o fedpower.Options) error {
	fmt.Println("== Fig. 5: per-application comparison, six training apps per device ==")
	res, err := fedpower.RunFig5(o)
	if err != nil {
		return err
	}
	if err := writeCSV("fig5.csv", func(w io.Writer) error { return fedpower.WriteFig5CSV(w, res) }); err != nil {
		return err
	}
	cmp := res.Comparison
	var rows [][]string
	for _, app := range cmp.Apps() {
		rows = append(rows, []string{
			app,
			fmt.Sprintf("%.1f", cmp.Ours[app].Exec.Mean()),
			fmt.Sprintf("%.1f", cmp.Base[app].Exec.Mean()),
			fmt.Sprintf("%.3f", cmp.Ours[app].IPS.Mean()/1e9),
			fmt.Sprintf("%.3f", cmp.Base[app].IPS.Mean()/1e9),
			fmt.Sprintf("%.3f", cmp.Ours[app].Power.Mean()),
			fmt.Sprintf("%.3f", cmp.Base[app].Power.Mean()),
		})
	}
	fmt.Print(experiment.Table(
		[]string{"App", "Exec[s] ours", "Exec[s] P+C", "IPS[G] ours", "IPS[G] P+C", "P[W] ours", "P[W] P+C"},
		rows))
	avgE, maxE := res.MeanExecSpeedupPct()
	avgI, maxI := res.MeanIPSGainPct()
	fmt.Printf("\nExec-time reduction: avg %.0f%%, max %.0f%% (paper: 22%% / 53%%)\n", avgE, maxE)
	fmt.Printf("IPS increase:        avg %.0f%%, max %.0f%% (paper: 29%% / 95%%)\n", avgI, maxI)
	return nil
}

func runGovernors(o fedpower.Options) error {
	fmt.Println("== Extension: federated RL vs classical governors (all apps to completion) ==")
	res, err := fedpower.RunGovernors(o)
	if err != nil {
		return err
	}
	if err := writeCSV("governors.csv", func(w io.Writer) error { return fedpower.WriteGovernorsCSV(w, res) }); err != nil {
		return err
	}
	var rows [][]string
	for _, pol := range res.Policies {
		reward, execS, powerW, violations := res.Summary(pol)
		rows = append(rows, []string{
			pol,
			fmt.Sprintf("%+.3f", reward),
			fmt.Sprintf("%.1f", execS),
			fmt.Sprintf("%.3f", powerW),
			fmt.Sprintf("%d", violations),
		})
	}
	fmt.Print(experiment.Table(
		[]string{"Policy", "avg reward", "avg exec [s]", "avg power [W]", "violations"},
		rows))
	fmt.Println("\n(performance ignores the budget, powersave ignores performance, the")
	fmt.Println(" capper reacts after violations; the learned policy anticipates them.)")
	return nil
}

func runHetero(o fedpower.Options) error {
	budgets := []float64{0.45, 0.60, 0.75}
	fmt.Printf("== Extension (paper Sec. V): heterogeneous per-device budgets %v W ==\n", budgets)
	res, err := fedpower.RunHeterogeneous(o, budgets)
	if err != nil {
		return err
	}
	if err := writeCSV("hetero.csv", func(w io.Writer) error { return fedpower.WriteHeteroCSV(w, res) }); err != nil {
		return err
	}
	var rows [][]string
	for i, b := range res.Budgets {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", b),
			fmt.Sprintf("%+.3f", res.Hetero[i].AvgReward),
			fmt.Sprintf("%.1f%%", res.Hetero[i].ViolationRate*100),
			fmt.Sprintf("%+.3f", res.Homog[i].AvgReward),
			fmt.Sprintf("%.1f%%", res.Homog[i].ViolationRate*100),
		})
	}
	fmt.Print(experiment.Table(
		[]string{"Budget [W]", "hetero reward", "hetero viol.", "mean-trained reward", "mean-trained viol."},
		rows))
	fmt.Println("\n(The shared model averages conflicting budgets — the agent state has no")
	fmt.Println(" budget feature to condition on, which is why the paper defers varying")
	fmt.Println(" objectives to future work.)")
	return nil
}

func runPrivacy(o fedpower.Options) error {
	fmt.Println("== Extension: privacy/communication comparison (split-half scenario) ==")
	res, err := fedpower.RunPrivacy(o)
	if err != nil {
		return err
	}
	if err := writeCSV("privacy.csv", func(w io.Writer) error { return fedpower.WritePrivacyCSV(w, res) }); err != nil {
		return err
	}
	var rows [][]string
	for _, a := range []fedpower.ArchEval{res.Local, res.Federated, res.Central} {
		rows = append(rows, []string{
			a.Name,
			fmt.Sprintf("%+.3f", a.AvgReward),
			fmt.Sprintf("%d", a.TotalBytes),
			fmt.Sprintf("%d", a.RawTraceBytes),
		})
	}
	fmt.Print(experiment.Table(
		[]string{"Architecture", "avg eval reward", "total comms [B]", "raw traces exposed [B]"},
		rows))
	fmt.Println("\n(The central architecture of [7] learns from the merged raw stream but")
	fmt.Println(" exposes every power/counter sample — the side channel the paper's")
	fmt.Println(" federated protocol eliminates at comparable policy quality.)")
	return nil
}

func runTrace(o fedpower.Options, app, format string) error {
	var rec fedpower.TraceRecorder
	switch format {
	case "csv":
		rec = fedpower.NewCSVTraceRecorder(os.Stdout)
	case "jsonl":
		rec = fedpower.NewJSONLTraceRecorder(os.Stdout)
	default:
		return fmt.Errorf("unknown trace format %q (want csv or jsonl)", format)
	}
	steps, err := fedpower.RecordEpisode(o, app, rec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fedpower: recorded %d control intervals of %s\n", steps, app)
	return nil
}

func runApps(o fedpower.Options) error {
	fmt.Println("== Evaluation applications (SPLASH-2-style models) ==")
	table := o.Table
	pm := o.Power
	budget := o.Core.Reward.PCritW
	var rows [][]string
	for _, spec := range fedpower.SPLASH2() {
		app := fedpower.NewApp(spec)
		dev := fedpower.NewDevice(table, pm, rand.New(rand.NewSource(1)))
		dev.Load(app)
		opt := dev.OptimalLevel(app.Demand(), budget)
		lv := table.Level(opt)
		dem := app.Demand()
		ipc := 1 / (dem.BaseCPI + dem.MPKI/1000*dem.MemLatencyNs*lv.FreqMHz/1000)
		execT := spec.TotalInstr / (ipc * lv.FreqMHz * 1e6)
		class := "compute"
		if dem.MPKI >= 15 {
			class = "memory"
		} else if dem.MPKI >= 5 {
			class = "mixed"
		}
		rows = append(rows, []string{
			spec.Name, class,
			fmt.Sprintf("%.2f", dem.BaseCPI),
			fmt.Sprintf("%.1f", dem.MPKI),
			fmt.Sprintf("%.2f", dem.Activity),
			fmt.Sprintf("%d (%.0f MHz)", opt, lv.FreqMHz),
			fmt.Sprintf("%.1f", execT),
			fmt.Sprintf("%d", len(spec.Phases)),
		})
	}
	fmt.Print(experiment.Table(
		[]string{"App", "Class", "CPI", "MPKI", "Act", "Optimal level @0.6W", "Exec@opt [s]", "Phases"},
		rows))
	return nil
}

func runPlatform(o fedpower.Options) error {
	fmt.Println("== Processor model (NVIDIA Jetson Nano class) ==")
	table := o.Table
	pm := o.Power
	// Power envelope per level for the extreme application classes.
	cmp, err := fedpower.AppByName("water-ns")
	if err != nil {
		return err
	}
	mem, err := fedpower.AppByName("ocean")
	if err != nil {
		return err
	}
	power := func(spec fedpower.AppSpec, k int) float64 {
		lv := table.Level(k)
		d := fedpower.NewApp(spec).Demand()
		ipc := 1 / (d.BaseCPI + d.MPKI/1000*d.MemLatencyNs*lv.FreqMHz/1000)
		return pm.Total(lv.VoltV, lv.FreqMHz, ipc, d.Activity)
	}
	var rows [][]string
	for k := 0; k < table.Len(); k++ {
		lv := table.Level(k)
		rows = append(rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", lv.FreqMHz),
			fmt.Sprintf("%.3f", lv.VoltV),
			fmt.Sprintf("%.3f", power(cmp, k)),
			fmt.Sprintf("%.3f", power(mem, k)),
		})
	}
	fmt.Print(experiment.Table(
		[]string{"Level", "f [MHz]", "V [V]", "P compute (water-ns) [W]", "P memory (ocean) [W]"},
		rows))
	fmt.Printf("\npower budget P_crit = %.1f W crosses the compute column mid-range\n", o.Core.Reward.PCritW)
	fmt.Println("and never crosses the memory column — the property the experiments exercise.")
	return nil
}

func runConvergence(o fedpower.Options) error {
	fmt.Printf("== Convergence: first round from which the window-mean reward SUSTAINS a threshold ==\n")
	// 0.4 sits between the federated plateau (~0.55-0.64) and the failing
	// local policies' averages, so it separates the regimes; a policy that
	// touches the level and later degrades does not count.
	const threshold, window = 0.4, 6
	fmt.Printf("threshold %.2f, window %d rounds (R=%d)\n\n", threshold, window, o.Rounds)
	var rows [][]string
	for i, sc := range fedpower.TableII() {
		res, err := fedpower.RunScenario(o, i, sc)
		if err != nil {
			return err
		}
		show := func(r int) string {
			if r < 0 {
				return "never"
			}
			return fmt.Sprintf("%d", r)
		}
		rows = append(rows, []string{
			sc.Name,
			show(fedpower.RoundsToSustain(res.Fed, threshold, window)),
			show(fedpower.RoundsToSustain(res.Local[0], threshold, window)),
			show(fedpower.RoundsToSustain(res.Local[1], threshold, window)),
		})
	}
	fmt.Print(experiment.Table([]string{"Scenario", "federated", "local A", "local B"}, rows))
	fmt.Println("\n(Fig. 3's message in one table: per scenario one local policy happens to")
	fmt.Println(" train on generalisable applications and sustains early, the other one")
	fmt.Println(" degrades and typically never sustains. Only the federated policy sustains")
	fmt.Println(" the level in every scenario — robustness is the collaborative win; its")
	fmt.Println(" late sustain point reflects rare single-round dips on borderline apps.)")
	return nil
}

func runReplicate(o fedpower.Options, n int) error {
	if n < 2 {
		return fmt.Errorf("replicate needs at least 2 seeds, got %d", n)
	}
	seeds := fedpower.DefaultReplicationSeeds(o.Seed, n)
	fmt.Printf("== Replication: Fig. 3 comparison across %d seeds (R=%d each) ==\n", n, o.Rounds)
	rep, err := fedpower.RunReplication(o, seeds)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, seed := range rep.Seeds {
		rows = append(rows, []string{
			fmt.Sprintf("%d", seed),
			fmt.Sprintf("%+.3f", rep.FedReward[i]),
			fmt.Sprintf("%+.3f", rep.LocalReward[i]),
			fmt.Sprintf("%+.0f%%", rep.ImprovementPct[i]),
		})
	}
	fmt.Print(experiment.Table([]string{"Seed", "fed reward", "local reward", "improvement"}, rows))
	mean, std := rep.Summary()
	fmt.Printf("\nimprovement across seeds: %+.0f%% ± %.0f%% (paper single run: +57%%)\n", mean, std)
	if rep.AllPositive() {
		fmt.Println("federated beat local-only under every seed")
	} else {
		fmt.Println("WARNING: federated did not beat local-only under every seed")
	}
	return nil
}

// runVerify is the one-command reproduction validator: it re-derives every
// headline claim at a reduced (but deterministic) budget and prints a
// PASS/FAIL checklist, exiting non-zero on any failure.
func runVerify(o fedpower.Options) error {
	fmt.Println("== Reproduction self-check ==")
	failures := 0
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  [%s] %-52s %s\n", status, name, detail)
	}

	// Structural claims (exact).
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(1)))
	check("15 Jetson Nano V/f levels, 102-1479 MHz",
		table.Len() == 15 && stats.ApproxEqual(table.MinFreqMHz(), 102) && stats.ApproxEqual(table.MaxFreqMHz(), 1479),
		fmt.Sprintf("%d levels", table.Len()))
	check("policy network has 687 parameters", ctrl.NumParams() == 687,
		fmt.Sprintf("%d", ctrl.NumParams()))
	check("model transfer ~2.8 kB", fedpower.TransferSize(687) == 2757,
		fmt.Sprintf("%d B", fedpower.TransferSize(687)))
	check("replay buffer ~100 kB", fedpower.NewReplayBuffer(4000).Footprint(fedpower.StateDim) == 112000,
		fmt.Sprintf("%d B", fedpower.NewReplayBuffer(4000).Footprint(fedpower.StateDim)))
	rp := params.Reward
	check("reward Eq.(4) anchors",
		stats.ApproxEqual(rp.Reward(1, 0.5), 1) && stats.ApproxEqual(rp.Reward(1, 0.65), 0) && stats.ApproxEqual(rp.Reward(1, 0.9), -1),
		"r(1,0.5)=1 r(1,0.65)=0 r(1,0.9)=-1")

	// Behavioural claims (reduced budget, deterministic seed).
	vo := o
	vo.Rounds = 40
	vo.StepsPerRound = 100
	vo.EvalSteps = 15
	sc2, err := fedpower.RunScenario(vo, 1, fedpower.TableII()[1])
	if err != nil {
		return err
	}
	fed, local := sc2.AvgFedReward(), sc2.AvgLocalReward()
	check("Fig.3: federated beats local-only (scenario 2)", fed > local,
		fmt.Sprintf("%.3f vs %.3f", fed, local))
	f4, err := fedpower.Fig4FromScenario(sc2)
	if err != nil {
		return err
	}
	meanOf := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	check("Fig.4: ocean/radix policy picks higher frequencies",
		meanOf(f4.LocalB) > meanOf(f4.Fed) && meanOf(f4.LocalB) > meanOf(f4.LocalA),
		fmt.Sprintf("localB %.2f, fed %.2f, localA %.2f", meanOf(f4.LocalB), meanOf(f4.Fed), meanOf(f4.LocalA)))

	co := o // full budget for the baseline comparison: it needs convergence
	cmp, err := fedpower.RunTable3(co)
	if err != nil {
		return err
	}
	check("Table III: ours faster than Profit+CollabPolicy", cmp.OursExecS < cmp.BaseExecS,
		fmt.Sprintf("%.1f s vs %.1f s", cmp.OursExecS, cmp.BaseExecS))
	check("Table III: ours higher IPS", cmp.OursIPS > cmp.BaseIPS,
		fmt.Sprintf("%.2fG vs %.2fG", cmp.OursIPS/1e9, cmp.BaseIPS/1e9))
	check("Table III: both under the power constraint",
		cmp.OursPowerW < 0.6 && cmp.BasePowerW < 0.6,
		fmt.Sprintf("%.2f W / %.2f W", cmp.OursPowerW, cmp.BasePowerW))

	if failures > 0 {
		return fmt.Errorf("%d reproduction checks failed", failures)
	}
	fmt.Println("\nall reproduction checks passed")
	return nil
}

func runSweep(o fedpower.Options, dim string) error {
	pts, err := experiment.SweepByName(dim)
	if err != nil {
		return err
	}
	fmt.Printf("== Sensitivity sweep: %s (scenario 2, %d rounds per point) ==\n", dim, o.Rounds)
	res, err := experiment.RunSweep(o, dim, pts)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, label := range res.Labels {
		marker := ""
		if label == res.Best() {
			marker = "  <- best"
		}
		rows = append(rows, []string{label, fmt.Sprintf("%+.3f%s", res.Reward[i], marker)})
	}
	fmt.Print(experiment.Table([]string{"Configuration", "avg eval reward"}, rows))
	return nil
}

func runMultiCore(o fedpower.Options) error {
	fmt.Println("== Extension: 4-core shared-clock clusters, concurrent workloads ==")
	res, err := fedpower.RunMultiCore(o)
	if err != nil {
		return err
	}
	if err := writeCSV("multicore.csv", func(w io.Writer) error { return fedpower.WriteMultiCoreCSV(w, res) }); err != nil {
		return err
	}
	fmt.Printf("cluster budget %.1f W, %d cores per device\n\n", res.BudgetW, res.Cores)
	fmt.Printf("  local-A %s  avg %.3f\n",
		experiment.Sparkline(experiment.RewardSeries(res.Local[0]), 60, -1, 1),
		experiment.Mean(res.Local[0], func(e experiment.RoundEval) float64 { return e.Reward }))
	fmt.Printf("  local-B %s  avg %.3f\n",
		experiment.Sparkline(experiment.RewardSeries(res.Local[1]), 60, -1, 1),
		experiment.Mean(res.Local[1], func(e experiment.RoundEval) float64 { return e.Reward }))
	fmt.Printf("  fed     %s  avg %.3f\n",
		experiment.Sparkline(experiment.RewardSeries(res.Fed), 60, -1, 1),
		res.AvgFedReward())
	fmt.Printf("\nfederated vs local-only: %+.3f vs %+.3f average reward\n",
		res.AvgFedReward(), res.AvgLocalReward())
	return nil
}

func runResilience(o fedpower.Options, dropRate, truncRate float64, quorum int, faultSeed int64, codecName string) error {
	fmt.Println("== Resilience: TCP federation under injected faults ==")
	codec, err := fedpower.ParseCodec(codecName)
	if err != nil {
		return err
	}
	r := fedpower.DefaultResilienceOptions()
	r.Options = o
	r.Codec = codec
	if o.Rounds == fedpower.DefaultOptions().Rounds {
		// The paper-sized 100-round run is overkill for a fault demo; keep
		// the scenario snappy unless -rounds asked otherwise.
		r.Options.Rounds = 20
	}
	r.Quorum = quorum
	r.Faults.DropRate = dropRate
	r.Faults.TruncateRate = truncRate
	r.FaultSeed = faultSeed
	r.RoundTimeout = 10 * time.Second
	r.Retry = fedpower.Backoff{
		Attempts: 6,
		Base:     20 * time.Millisecond,
		Max:      500 * time.Millisecond,
		Jitter:   rand.New(rand.NewSource(faultSeed + 1)),
	}
	fmt.Printf("devices %d, rounds %d, drop %.0f%%, truncate %.0f%%, quorum %d, codec %s\n\n",
		len(r.Scenario.Devices), r.Options.Rounds, dropRate*100, truncRate*100, quorum, codec)

	res, err := fedpower.RunResilience(r)
	if err != nil {
		return err
	}
	numParams := fedpower.NewController(fedpower.DefaultControllerParams(fedpower.JetsonNanoTable().Len()),
		rand.New(rand.NewSource(0))).NumParams()
	rows := [][]string{
		{"Rounds completed", fmt.Sprintf("%d / %d", res.RoundsCompleted, r.Options.Rounds)},
		{"Injected faults", fmt.Sprintf("%d", res.FaultEvents)},
		{"Server drops / rejoins", fmt.Sprintf("%d / %d", res.Drops, res.Rejoins)},
		{"Wire codec", fmt.Sprintf("%s (%d B per model message)", codec, codec.TransferSize(numParams))},
		{"Server bytes sent / received", fmt.Sprintf("%d / %d", res.ServerBytesSent, res.ServerBytesReceived)},
		{"Final eval reward (12 apps)", fmt.Sprintf("%+.3f", res.FinalReward)},
	}
	fmt.Print(experiment.Table([]string{"Quantity", "value"}, rows))
	for _, c := range res.Clients {
		status := "completed"
		if c.Err != "" {
			status = c.Err
		}
		fmt.Printf("  device %d: last round %d, %d reconnects, %d B sent — %s\n",
			c.ID, c.LastRound, c.Reconnects, c.BytesSent, status)
	}
	if res.Err != "" {
		fmt.Printf("\nrun degraded: %s\n", res.Err)
	} else {
		fmt.Println("\nall rounds committed despite the injected faults")
	}
	return nil
}

func runTree(o fedpower.Options, topologies, codecName string) error {
	fmt.Println("== Fleet scale: hierarchical aggregation capacity over TCP ==")
	codec, err := fedpower.ParseCodec(codecName)
	if err != nil {
		return err
	}
	base := fedpower.DefaultTreeScaleOptions()
	base.Seed = o.Seed
	base.Codec = codec
	base.Parallelism = o.Parallelism
	if o.Rounds != fedpower.DefaultOptions().Rounds {
		base.Rounds = o.Rounds
	}
	// Quantized codecs re-round on every hop, so the tree-vs-flat identity
	// holds for the lossless codecs only; skip the reference run otherwise.
	base.Verify = !strings.HasPrefix(codec.String(), "quant")
	fmt.Printf("rounds %d, %d params, codec %s; lossless runs verified bit-identical to flat FedAvg\n\n",
		base.Rounds, base.NumParams, codec)

	var rows [][]string
	for _, spec := range strings.Split(topologies, ",") {
		t := base
		t.Topology = strings.TrimSpace(spec)
		res, err := fedpower.RunTreeScale(t)
		if err != nil {
			return err
		}
		hopBytes := "-"
		if res.Aggregators > 0 && res.RoundsCompleted > 0 {
			hopBytes = fmt.Sprintf("%.0f", float64(res.UplinkBytesSent+res.UplinkBytesReceived)/
				float64(res.Aggregators*res.RoundsCompleted))
		}
		match := "yes"
		switch {
		case !t.Verify:
			match = "-"
		case !res.FlatMatch:
			match = "NO"
		}
		rows = append(rows, []string{
			t.Topology,
			fmt.Sprintf("%d", res.Devices),
			fmt.Sprintf("%d", res.Aggregators),
			fmt.Sprintf("%d", res.Depth),
			fmt.Sprintf("%.1f", res.RoundsPerSec),
			hopBytes,
			fmt.Sprintf("%d", res.RootBytesSent+res.RootBytesReceived),
			match,
		})
	}
	fmt.Print(experiment.Table(
		[]string{"Topology", "devices", "aggs", "depth", "rounds/s", "B/hop/round", "root bytes", "flat-identical"},
		rows))
	return nil
}

func runOverhead(o fedpower.Options) error {
	fmt.Println("== Sec. IV-C: runtime overhead ==")
	res := fedpower.RunOverhead(o, 5000)
	rows := [][]string{
		{"Control decision latency", res.DecisionLatency.String(), "29 ms (Jetson Nano, Python)"},
		{"Overhead vs 500 ms interval", fmt.Sprintf("%.4f%%", res.OverheadPct), "5.9%"},
		{"Policy update latency", res.UpdateLatency.String(), "-"},
		{"Model parameters", fmt.Sprintf("%d", res.ModelParams), "687 implied"},
		{"Bytes per model transfer", fmt.Sprintf("%d", res.TransferBytes), "~2.8 kB"},
		{"Replay buffer storage", fmt.Sprintf("%d B", res.ReplayBytes), "~100 kB"},
	}
	fmt.Print(experiment.Table([]string{"Quantity", "measured", "paper"}, rows))
	return nil
}
