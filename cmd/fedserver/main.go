// Command fedserver runs the central aggregation server of Fig. 1 over TCP:
// it waits for the configured number of device processes (cmd/feddevice),
// drives R rounds of synchronous federated averaging, and writes the final
// global model to stdout as comma-separated float64 values (or to a file).
//
// Typical session (two terminals plus the server):
//
//	fedserver -addr :7070 -devices 2 -rounds 100
//	feddevice -server localhost:7070 -apps fft,lu
//	feddevice -server localhost:7070 -apps ocean,radix
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"fedpower"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fedserver: ")

	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	devices := flag.Int("devices", 2, "number of device clients to wait for")
	rounds := flag.Int("rounds", 100, "federated rounds R")
	seed := flag.Int64("seed", 1, "seed for the initial global model")
	quorum := flag.Int("quorum", 0, "minimum updates per round to commit (0 = all devices)")
	roundTimeout := flag.Duration("round-timeout", 0, "per-round update deadline per device (0 = wait forever)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-broadcast write deadline per device (0 = none)")
	joinTimeout := flag.Duration("join-timeout", 10*time.Second, "deadline for an accepted connection's join frame (0 = none)")
	out := flag.String("out", "", "write the final model as comma-separated text to this file instead of stdout")
	modelPath := flag.String("model", "", "also write the final model in the binary .fpm format (loadable with fedpower.LoadModel)")
	codecName := flag.String("codec", "dense", "wire codec — dense, delta, quant8 or quant16; devices must use the same")
	flag.Parse()

	codec, err := fedpower.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	codec = codec.Seeded(*seed)

	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	initial := fedpower.NewController(params, rand.New(rand.NewSource(*seed))).ModelParams()

	srv, err := fedpower.NewServer(*addr, *devices, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	srv.Quorum = *quorum
	srv.RoundTimeout = *roundTimeout
	srv.WriteTimeout = *writeTimeout
	srv.JoinTimeout = *joinTimeout
	srv.Codec = codec
	srv.OnDrop = func(id uint32, round int, err error) {
		log.Printf("round %d: dropped device %d: %v", round, id, err)
	}
	// Teardown at process exit; Serve's return value already decided the
	// protocol outcome.
	defer func() { _ = srv.Close() }()
	log.Printf("listening on %s for %d devices, %d rounds, %d model parameters (codec %s, %d B per transfer)",
		srv.Addr(), *devices, *rounds, len(initial), codec, codec.TransferSize(len(initial)))

	final, err := srv.Serve(initial, func(round int, global []float64) {
		if round%10 == 0 || round == *rounds {
			log.Printf("round %d/%d aggregated (sent %d B, received %d B so far)",
				round, *rounds, srv.BytesSent(), srv.BytesReceived())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if srv.Drops() > 0 || srv.Rejoins() > 0 {
		log.Printf("connection churn: %d drops, %d rejoins", srv.Drops(), srv.Rejoins())
	}

	if *modelPath != "" {
		if err := fedpower.SaveModel(*modelPath, final); err != nil {
			log.Fatal(err)
		}
		log.Printf("binary model written to %s", *modelPath)
	}

	text := formatModel(final)
	if *out == "" {
		fmt.Println(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("final global model written to %s", *out)
}

func formatModel(params []float64) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = strconv.FormatFloat(p, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
