// Command fedserver runs the central aggregation server of Fig. 1 over TCP:
// it waits for the configured number of device processes (cmd/feddevice),
// drives R rounds of synchronous federated averaging, and writes the final
// global model to stdout as comma-separated float64 values (or to a file).
//
// Typical session (two terminals plus the server):
//
//	fedserver -addr :7070 -devices 2 -rounds 100
//	feddevice -server localhost:7070 -apps fft,lu
//	feddevice -server localhost:7070 -apps ocean,radix
//
// With -parent the process runs as an interior aggregator instead — a
// server to its children and a client to the parent — so a tree topology is
// one fedserver root plus one fedserver -parent per interior node:
//
//	fedserver -addr :7070 -devices 2 -rounds 100
//	fedserver -addr :7071 -parent localhost:7070 -id 10001 -devices 8
//	fedserver -addr :7072 -parent localhost:7070 -id 10002 -devices 8
//	feddevice -server localhost:7071 -apps fft,lu   (×8, and 8 on :7072)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"fedpower"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fedserver: ")

	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	devices := flag.Int("devices", 2, "number of device clients to wait for")
	rounds := flag.Int("rounds", 100, "federated rounds R")
	seed := flag.Int64("seed", 1, "seed for the initial global model")
	quorum := flag.Int("quorum", 0, "minimum updates per round to commit (0 = all devices)")
	roundTimeout := flag.Duration("round-timeout", 0, "per-round update deadline per device (0 = wait forever)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-broadcast write deadline per device (0 = none)")
	joinTimeout := flag.Duration("join-timeout", 10*time.Second, "deadline for an accepted connection's join frame (0 = none)")
	parallel := flag.Int("parallel", 0, "round worker width: 0 = one I/O worker per device plus GOMAXPROCS accumulation shards; any width is bit-identical")
	out := flag.String("out", "", "write the final model as comma-separated text to this file instead of stdout")
	modelPath := flag.String("model", "", "also write the final model in the binary .fpm format (loadable with fedpower.LoadModel)")
	codecName := flag.String("codec", "dense", "wire codec — dense, delta, quant8 or quant16; devices must use the same")
	parent := flag.String("parent", "", "run as an interior aggregator relaying to this parent server instead of as the root")
	parentFallbacks := flag.String("parent-fallbacks", "", "aggregator mode: comma-separated alternate parents tried when -parent stops answering")
	aggID := flag.Uint("id", 10001, "aggregator mode: this node's client ID on the parent link")
	flag.Parse()

	codec, err := fedpower.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	codec = codec.Seeded(*seed)

	if *parent != "" {
		runAggregator(*addr, *parent, *parentFallbacks, uint32(*aggID), *devices, codec,
			*quorum, *parallel, *roundTimeout, *writeTimeout, *joinTimeout, *out, *modelPath)
		return
	}

	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	initial := fedpower.NewController(params, rand.New(rand.NewSource(*seed))).ModelParams()

	srv, err := fedpower.NewServer(*addr, *devices, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	srv.Quorum = *quorum
	srv.Parallelism = *parallel
	srv.RoundTimeout = *roundTimeout
	srv.WriteTimeout = *writeTimeout
	srv.JoinTimeout = *joinTimeout
	srv.Codec = codec
	srv.OnDrop = func(id uint32, round int, err error) {
		log.Printf("round %d: dropped device %d: %v", round, id, err)
	}
	// Teardown at process exit; Serve's return value already decided the
	// protocol outcome.
	defer func() { _ = srv.Close() }()
	log.Printf("listening on %s for %d devices, %d rounds, %d model parameters (codec %s, %d B per transfer)",
		srv.Addr(), *devices, *rounds, len(initial), codec, codec.TransferSize(len(initial)))

	final, err := srv.Serve(initial, func(round int, global []float64) {
		if round%10 == 0 || round == *rounds {
			log.Printf("round %d/%d aggregated (sent %d B, received %d B so far)",
				round, *rounds, srv.BytesSent(), srv.BytesReceived())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if srv.Drops() > 0 || srv.Rejoins() > 0 {
		log.Printf("connection churn: %d drops, %d rejoins", srv.Drops(), srv.Rejoins())
	}

	if *modelPath != "" {
		if err := fedpower.SaveModel(*modelPath, final); err != nil {
			log.Fatal(err)
		}
		log.Printf("binary model written to %s", *modelPath)
	}

	text := formatModel(final)
	if *out == "" {
		fmt.Println(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("final global model written to %s", *out)
}

// runAggregator runs the process as an interior tree node: a server to the
// -devices children below it (devices or further aggregators) and a client
// to -parent, relaying exact sub-sums upward each round.
func runAggregator(addr, parent, fallbacks string, id uint32, children int, codec fedpower.Codec,
	quorum, parallel int, roundTimeout, writeTimeout, joinTimeout time.Duration, out, modelPath string) {
	agg, err := fedpower.NewAggregator(addr, children)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = agg.Close() }()
	agg.Parent = parent
	if fallbacks != "" {
		for _, f := range strings.Split(fallbacks, ",") {
			if f = strings.TrimSpace(f); f != "" {
				agg.Fallbacks = append(agg.Fallbacks, f)
			}
		}
	}
	agg.ID = id
	agg.Uplink = codec
	agg.Retry = fedpower.Backoff{Attempts: 10, Base: 100 * time.Millisecond, Max: 5 * time.Second}
	agg.Children.Codec = codec
	agg.Children.Quorum = quorum
	agg.Children.Parallelism = parallel
	agg.Children.RoundTimeout = roundTimeout
	agg.Children.WriteTimeout = writeTimeout
	agg.Children.JoinTimeout = joinTimeout
	agg.Children.OnDrop = func(id uint32, round int, err error) {
		log.Printf("round %d: dropped child %d: %v", round, id, err)
	}
	log.Printf("aggregating %d children on %s for parent %s (codec %s, id %d)",
		children, agg.Addr(), parent, codec, id)

	final, err := agg.Run()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("relay done: %d B up / %d B down on the parent link, %d reconnects",
		agg.UplinkBytesSent(), agg.UplinkBytesReceived(), agg.Reconnects())

	if modelPath != "" {
		if err := fedpower.SaveModel(modelPath, final); err != nil {
			log.Fatal(err)
		}
		log.Printf("binary model written to %s", modelPath)
	}
	text := formatModel(final)
	if out == "" {
		fmt.Println(text)
		return
	}
	if err := os.WriteFile(out, []byte(text+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("final global model written to %s", out)
}

func formatModel(params []float64) string {
	parts := make([]string, len(params))
	for i, p := range params {
		parts[i] = strconv.FormatFloat(p, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
