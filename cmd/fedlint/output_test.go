package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"fedpower/internal/lint"
)

func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Analyzer: "privacytaint",
			Pos:      token.Position{Filename: "/mod/internal/fed/client.go", Line: 42, Column: 7},
			Message:  "raw telemetry reaches the federated wire",
			Path: []lint.Hop{
				{Pos: token.Position{Filename: "/mod/internal/sim/device.go", Line: 9, Column: 3}, Note: "assigned to obs"},
				{Pos: token.Position{Filename: "/mod/internal/fed/client.go", Line: 42, Column: 7}, Note: "passed to sink"},
			},
		},
		{
			Analyzer: "norand",
			Pos:      token.Position{Filename: "/mod/main.go", Line: 3, Column: 1},
			Message:  "global rand",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, "/mod", sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var got []jsonFinding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}
	if got[0].File != "internal/fed/client.go" || got[0].Line != 42 {
		t.Errorf("first finding position = %s:%d, want internal/fed/client.go:42", got[0].File, got[0].Line)
	}
	if len(got[0].Path) != 2 || got[0].Path[0].Note != "assigned to obs" {
		t.Errorf("taint path not preserved: %+v", got[0].Path)
	}
	if len(got[1].Path) != 0 {
		t.Errorf("single-site finding grew a path: %+v", got[1].Path)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, "/mod", nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty run must encode as [], got %q", buf.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, "/mod", lint.DefaultSuite(), sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("malformed SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "fedlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"norand", "privacytaint", "unusedignore"} {
		if !ruleIDs[want] {
			t.Errorf("rule %q missing from driver rules", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	taint := run.Results[0]
	if len(taint.CodeFlows) != 1 || len(taint.CodeFlows[0].ThreadFlows) != 1 {
		t.Fatalf("taint finding missing codeFlow: %+v", taint.CodeFlows)
	}
	locs := taint.CodeFlows[0].ThreadFlows[0].Locations
	if len(locs) != 2 {
		t.Fatalf("got %d threadFlow locations, want 2", len(locs))
	}
	if uri := locs[0].Location.PhysicalLocation.ArtifactLocation.URI; uri != "internal/sim/device.go" {
		t.Errorf("first hop URI = %q", uri)
	}
	if len(run.Results[1].CodeFlows) != 0 {
		t.Errorf("single-site finding grew a codeFlow")
	}
}

// TestWireBoundFixtureRendering drives the seeded wiremod violations through
// all three output formats: every wirebound finding must surface its
// source→sink hop path as numbered hops in text, a path array in -json, and
// a codeFlow in -sarif.
func TestWireBoundFixtureRendering(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "wiremod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	suite := []lint.Analyzer{
		lint.WireBound{Config: lint.WireBoundConfig{
			WirePkgs:       []string{"wiremod/wire"},
			AllocFuncs:     []string{"wiremod/buf.Build#0"},
			SizeFuncs:      []string{"io.CopyN#2"},
			MaxProvenBound: 1 << 16,
		}},
	}
	diags := lint.Run(pkgs, suite)
	if len(diags) == 0 {
		t.Fatal("fixture produced no wirebound findings")
	}
	for _, d := range diags {
		if len(d.Path) < 2 {
			t.Fatalf("wirebound finding without a hop path: %s", d)
		}
		text := d.String()
		if !strings.Contains(text, "[1] ") || !strings.Contains(text, fmt.Sprintf("[%d] ", len(d.Path))) {
			t.Errorf("text rendering lost hops:\n%s", text)
		}
	}

	var jsonBuf bytes.Buffer
	if err := writeJSON(&jsonBuf, root, diags); err != nil {
		t.Fatal(err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(jsonBuf.Bytes(), &findings); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	jsonPaths := 0
	for _, f := range findings {
		jsonPaths += len(f.Path)
		for _, h := range f.Path {
			if strings.HasPrefix(h.File, "/") || h.Line == 0 {
				t.Errorf("JSON hop not relativized or unpositioned: %+v", h)
			}
		}
	}
	if jsonPaths == 0 {
		t.Error("JSON output carried no path hops")
	}

	var sarifBuf bytes.Buffer
	if err := writeSARIF(&sarifBuf, root, suite, diags); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(sarifBuf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	ruleIDs := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["wirebound"] {
		t.Error("wirebound missing from SARIF driver rules")
	}
	flows := 0
	for _, r := range log.Runs[0].Results {
		for _, cf := range r.CodeFlows {
			for _, tf := range cf.ThreadFlows {
				flows += len(tf.Locations)
			}
		}
	}
	if flows != jsonPaths {
		t.Errorf("SARIF threadFlow locations = %d, JSON path hops = %d; formats disagree", flows, jsonPaths)
	}
}

// TestEffectFixtureRendering drives the seeded effectmod violations through
// all three output formats: every interprocedural finding must surface its
// position-annotated path as numbered hops in text, a path array in -json,
// and a codeFlow in -sarif.
func TestEffectFixtureRendering(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "effectmod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	suite := []lint.Analyzer{
		lint.AllocFree{},
		lint.MapOrder{},
		lint.SlotRace{ForEach: []string{"effectmod/par.ForEach"}},
	}
	diags := lint.Run(pkgs, suite)
	var withPath []lint.Diagnostic
	for _, d := range diags {
		if len(d.Path) > 0 {
			withPath = append(withPath, d)
		}
	}
	if len(withPath) < 3 {
		t.Fatalf("fixture produced %d path-carrying findings, want at least one per analyzer", len(withPath))
	}

	// Text: numbered hops under the finding line.
	for _, d := range withPath {
		text := d.String()
		if !strings.Contains(text, "[1] ") || !strings.Contains(text, fmt.Sprintf("[%d] ", len(d.Path))) {
			t.Errorf("text rendering lost hops:\n%s", text)
		}
	}

	// JSON: path array with file-relative hop positions.
	var jsonBuf bytes.Buffer
	if err := writeJSON(&jsonBuf, root, diags); err != nil {
		t.Fatal(err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(jsonBuf.Bytes(), &findings); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	jsonPaths := 0
	for _, f := range findings {
		jsonPaths += len(f.Path)
		for _, h := range f.Path {
			if strings.HasPrefix(h.File, "/") || h.Line == 0 {
				t.Errorf("JSON hop not relativized or unpositioned: %+v", h)
			}
		}
	}
	if jsonPaths == 0 {
		t.Error("JSON output carried no path hops")
	}

	// SARIF: one codeFlow per path-carrying finding, hop counts preserved.
	var sarifBuf bytes.Buffer
	if err := writeSARIF(&sarifBuf, root, suite, diags); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(sarifBuf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	flows := 0
	for _, r := range log.Runs[0].Results {
		for _, cf := range r.CodeFlows {
			for _, tf := range cf.ThreadFlows {
				flows += len(tf.Locations)
			}
		}
	}
	if flows != jsonPaths {
		t.Errorf("SARIF threadFlow locations = %d, JSON path hops = %d; formats disagree", flows, jsonPaths)
	}
}
