package main

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"fedpower/internal/lint"
)

// This file renders findings in machine-readable formats. Both encoders
// receive the already-filtered diagnostic slice and relativize file paths
// against the module root, so output is stable across checkouts and usable
// as a CI artifact.

// jsonHop mirrors lint.Hop with a flat position.
type jsonHop struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Note   string `json:"note"`
}

// jsonFinding is one diagnostic in -json mode.
type jsonFinding struct {
	Analyzer string    `json:"analyzer"`
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Column   int       `json:"column"`
	Message  string    `json:"message"`
	Path     []jsonHop `json:"path,omitempty"`
}

func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// writeJSON emits findings as a JSON array (never null, so consumers can
// range without a nil check).
func writeJSON(w io.Writer, root string, diags []lint.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		f := jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		}
		for _, h := range d.Path {
			f.Path = append(f.Path, jsonHop{
				File:   relPath(root, h.Pos.Filename),
				Line:   h.Pos.Line,
				Column: h.Pos.Column,
				Note:   h.Note,
			})
		}
		out = append(out, f)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — the subset GitHub code scanning and most SARIF
// viewers consume: one run, one rule per analyzer, one result per finding,
// taint paths as codeFlows/threadFlows.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLoc `json:"locations"`
}

type sarifThreadFlowLoc struct {
	Location sarifLocation `json:"location"`
}

func sarifLoc(root string, pos lintPos, msg string) sarifLocation {
	loc := sarifLocation{
		PhysicalLocation: sarifPhysical{
			ArtifactLocation: sarifArtifact{URI: relPath(root, pos.Filename)},
			Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
		},
	}
	if msg != "" {
		loc.Message = &sarifMessage{Text: msg}
	}
	return loc
}

// lintPos is the position triple shared by diagnostics and hops.
type lintPos struct {
	Filename     string
	Line, Column int
}

// writeSARIF emits findings as a SARIF 2.1.0 log. Taint paths become
// codeFlows so SARIF viewers step through the source → sink chain.
func writeSARIF(w io.Writer, root string, suite []lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(suite)+1)
	for _, a := range suite {
		rules = append(rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifMessage{Text: a.Doc()},
		})
	}
	// Run-level synthetic findings not tied to one analyzer's Check.
	rules = append(rules, sarifRule{
		ID:               "unusedignore",
		ShortDescription: sarifMessage{Text: "//fedlint:ignore directive that no longer suppresses any finding"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{
				sarifLoc(root, lintPos{d.Pos.Filename, d.Pos.Line, d.Pos.Column}, ""),
			},
		}
		if len(d.Path) > 0 {
			tf := sarifThreadFlow{}
			for i, h := range d.Path {
				tf.Locations = append(tf.Locations, sarifThreadFlowLoc{
					Location: sarifLoc(root, lintPos{h.Pos.Filename, h.Pos.Line, h.Pos.Column},
						fmt.Sprintf("[%d] %s", i+1, h.Note)),
				})
			}
			res.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{tf}}}
		}
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fedlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
