// fedlint runs the repo-native static-analysis suite (internal/lint) over
// the module and exits non-zero on findings. It enforces the invariants the
// compiler cannot: seeded-RNG determinism, simulated-time purity,
// error-checked wire serialization, tolerance-based float comparison,
// supervised goroutine launches, telemetry that never reaches the
// federated wire (privacytaint), allocation-free annotated hot paths
// (allocfree), map folds that never observe iteration order (maporder),
// and worker-pool tasks that write only their own slot (slotrace).
//
// Usage:
//
//	go run ./cmd/fedlint ./...          # whole module
//	go run ./cmd/fedlint ./internal/fed # findings under one tree only
//	go run ./cmd/fedlint -list          # describe the analyzer suite
//	go run ./cmd/fedlint -json ./...    # findings as a JSON array
//	go run ./cmd/fedlint -sarif ./...   # findings as SARIF 2.1.0 (CI artifact)
//	go run ./cmd/fedlint -only wirebound,privacytaint ./...  # just these
//	go run ./cmd/fedlint -skip allocfree ./...               # all but these
//
// -only and -skip select analyzers by name (comma-separated, see -list);
// a name matching no analyzer is a usage error, not a silent no-op. The
// expensive whole-module analyzers (privacytaint, wirebound, allocfree,
// maporder, slotrace) can thereby be run — or excluded — independently in
// CI and local loops.
//
// Arguments select which directories' findings are reported; the whole
// module is always loaded and type-checked so cross-package types resolve.
// Interprocedural findings (privacytaint, allocfree, maporder, slotrace)
// carry their full source → sink or root → allocation path: as indented
// hops in text mode, a "path" array in -json, and codeFlows in -sarif. Exit status: 0 clean, 1 findings, 2 load or usage
// error (-json/-sarif keep the same exit contract, so CI can both archive
// the artifact and gate on it).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fedpower/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzer suite and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	asSARIF := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	only := flag.String("only", "", "comma-separated analyzer names to run (see -list)")
	skip := flag.String("skip", "", "comma-separated analyzer names to exclude")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fedlint [-list] [-only names|-skip names] [-json|-sarif] [path ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *asJSON && *asSARIF {
		fatal(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}
	if *only != "" && *skip != "" {
		fatal(fmt.Errorf("-only and -skip are mutually exclusive"))
	}

	suite := lint.DefaultSuite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}
	suite, err := selectAnalyzers(suite, *only, *skip)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(cwd)
	if err != nil {
		fatal(err)
	}

	filters, err := pathFilters(cwd, flag.Args())
	if err != nil {
		fatal(err)
	}

	diags := lint.Run(pkgs, suite)
	var shown []lint.Diagnostic
	for _, d := range diags {
		if filters.match(d.Pos.Filename) {
			shown = append(shown, d)
		}
	}

	switch {
	case *asJSON:
		if err := writeJSON(os.Stdout, cwd, shown); err != nil {
			fatal(err)
		}
	case *asSARIF:
		if err := writeSARIF(os.Stdout, cwd, suite, shown); err != nil {
			fatal(err)
		}
	default:
		for _, d := range shown {
			fmt.Println(d)
		}
	}
	if len(shown) > 0 {
		fmt.Fprintf(os.Stderr, "fedlint: %d finding(s)\n", len(shown))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedlint:", err)
	os.Exit(2)
}

// selectAnalyzers applies -only/-skip to the suite. Unknown names are a
// usage error: a typo'd -only must not gate CI on a vacuous all-clear.
func selectAnalyzers(suite []lint.Analyzer, only, skip string) ([]lint.Analyzer, error) {
	if only == "" && skip == "" {
		return suite, nil
	}
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name()] = true
	}
	parse := func(list string) (map[string]bool, error) {
		names := make(map[string]bool)
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if !known[n] {
				return nil, fmt.Errorf("unknown analyzer %q (run -list for the suite)", n)
			}
			names[n] = true
		}
		return names, nil
	}
	var out []lint.Analyzer
	if only != "" {
		names, err := parse(only)
		if err != nil {
			return nil, err
		}
		for _, a := range suite {
			if names[a.Name()] {
				out = append(out, a)
			}
		}
	} else {
		names, err := parse(skip)
		if err != nil {
			return nil, err
		}
		for _, a := range suite {
			if !names[a.Name()] {
				out = append(out, a)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analyzer selection left nothing to run")
	}
	return out, nil
}

// filterSet restricts reported findings to files under selected roots.
// Empty means everything.
type filterSet []string

// pathFilters resolves command-line path arguments. "./..." (or a bare
// "...") selects the whole module; "dir/..." selects a subtree; a plain
// directory selects that subtree too, since analyzers are package-scoped.
func pathFilters(cwd string, args []string) (filterSet, error) {
	var fs filterSet
	for _, a := range args {
		trimmed := strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
		if trimmed == "" || trimmed == "." {
			return nil, nil // whole module
		}
		abs, err := filepath.Abs(filepath.Join(cwd, trimmed))
		if err != nil {
			return nil, err
		}
		if st, err := os.Stat(abs); err != nil || !st.IsDir() {
			// A typo'd path must not report a vacuous all-clear.
			return nil, fmt.Errorf("path %s is not a directory", a)
		}
		fs = append(fs, abs)
	}
	return fs, nil
}

func (fs filterSet) match(file string) bool {
	if len(fs) == 0 {
		return true
	}
	for _, root := range fs {
		if file == root || strings.HasPrefix(file, root+string(filepath.Separator)) {
			return true
		}
	}
	return false
}
