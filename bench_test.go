package fedpower_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`) and adds micro-benchmarks
// for the controller's hot paths plus ablation benchmarks for the design
// choices called out in DESIGN.md. Experiment benchmarks report their
// headline quantity via b.ReportMetric (e.g. avg_reward, exec_s) so the
// bench output doubles as a results table; EXPERIMENTS.md records a full
// reference run.

import (
	"fmt"
	"math/rand"
	"testing"

	"fedpower"
)

// benchOptions returns a reduced training budget so one benchmark iteration
// stays around a hundred milliseconds while remaining large enough for the
// federated-vs-local gap to emerge. The full paper budget (R=100, T=100) is
// exercised by cmd/fedpower.
func benchOptions() fedpower.Options {
	o := fedpower.DefaultOptions()
	o.Rounds = 40
	o.StepsPerRound = 100
	o.EvalSteps = 15
	o.ExecEvalEvery = 10
	return o
}

// --------------------------------------------------------------------------
// Per-figure / per-table benchmarks

// BenchmarkFig2RewardDistribution regenerates the Fig. 2 reward-signal grid
// over the 15 Jetson Nano V/f levels.
func BenchmarkFig2RewardDistribution(b *testing.B) {
	table := fedpower.JetsonNanoTable()
	rp := fedpower.RewardParams{PCritW: 0.6, KOffsetW: 0.05}
	var res *fedpower.Fig2Result
	for i := 0; i < b.N; i++ {
		res = fedpower.RunFig2(table, rp, 33)
	}
	b.ReportMetric(res.Reward[14][0], "reward_fmax_0W")
}

// BenchmarkFig3LocalVsFederated runs one Table II scenario in both regimes
// (the Fig. 3 comparison) at the reduced budget and reports the average
// evaluation rewards.
func BenchmarkFig3LocalVsFederated(b *testing.B) {
	o := benchOptions()
	var fed, local float64
	for i := 0; i < b.N; i++ {
		res, err := fedpower.RunScenario(o, 1, fedpower.TableII()[1])
		if err != nil {
			b.Fatal(err)
		}
		fed, local = res.AvgFedReward(), res.AvgLocalReward()
	}
	b.ReportMetric(fed, "fed_avg_reward")
	b.ReportMetric(local, "local_avg_reward")
}

// BenchmarkFig4FrequencySelection regenerates the scenario-2 frequency
// traces and reports the mean selected frequency gap between the
// memory-trained local policy and the federated one.
func BenchmarkFig4FrequencySelection(b *testing.B) {
	o := benchOptions()
	var localB, fed float64
	for i := 0; i < b.N; i++ {
		res, err := fedpower.RunScenario(o, 1, fedpower.TableII()[1])
		if err != nil {
			b.Fatal(err)
		}
		f4, err := fedpower.Fig4FromScenario(res)
		if err != nil {
			b.Fatal(err)
		}
		localB, fed = mean(f4.LocalB), mean(f4.Fed)
	}
	b.ReportMetric(localB, "localB_norm_freq")
	b.ReportMetric(fed, "fed_norm_freq")
}

// BenchmarkTable3VsStateOfTheArt runs the Profit+CollabPolicy comparison on
// one scenario and reports the Table III quantities.
func BenchmarkTable3VsStateOfTheArt(b *testing.B) {
	o := benchOptions()
	var oursExec, baseExec float64
	for i := 0; i < b.N; i++ {
		res, err := fedpower.RunTable3(o)
		if err != nil {
			b.Fatal(err)
		}
		oursExec, baseExec = res.OursExecS, res.BaseExecS
	}
	b.ReportMetric(oursExec, "ours_exec_s")
	b.ReportMetric(baseExec, "baseline_exec_s")
}

// BenchmarkFig5PerApplication runs the split-half per-application
// comparison and reports the average execution-time reduction.
func BenchmarkFig5PerApplication(b *testing.B) {
	o := benchOptions()
	var avgSpeedup float64
	for i := 0; i < b.N; i++ {
		res, err := fedpower.RunFig5(o)
		if err != nil {
			b.Fatal(err)
		}
		avgSpeedup, _ = res.MeanExecSpeedupPct()
	}
	b.ReportMetric(avgSpeedup, "exec_reduction_pct")
}

// BenchmarkControlStepLatency measures one control decision — state build,
// inference, softmax sampling — the §IV-C overhead quantity (paper: 29 ms
// on the Jetson Nano under Python).
func BenchmarkControlStepLatency(b *testing.B) {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(1)))
	obs := fedpower.Observation{NormFreq: 0.6, PowerW: 0.5, IPC: 1.2, MissRate: 0.05, MPKI: 6}
	var state []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state = fedpower.StateVector(obs, state)
		_ = ctrl.SelectAction(state)
	}
}

// BenchmarkPolicyUpdate measures one mini-batch policy update (sample 128,
// backprop, Adam step) — the other on-device cost of Algorithm 1.
func BenchmarkPolicyUpdate(b *testing.B) {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	// Disable the automatic update cadence so the measured work is exactly
	// one explicit update per iteration.
	params.OptimInterval = 1 << 30
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	state := make([]float64, fedpower.StateDim)
	for i := 0; i < params.ReplayCapacity; i++ {
		for j := range state {
			state[j] = rng.Float64()
		}
		ctrl.Observe(state, rng.Intn(table.Len()), rng.Float64()*2-1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Update()
	}
}

// BenchmarkPolicyUpdateBatch scales the mini-batch update across batch
// sizes around the paper's C_B = 128, pinning the batched kernels' cost
// model (the ns/op floor is the Adam step over 687 parameters, the slope
// is the per-sample kernel work) — all at 0 allocs/op.
func BenchmarkPolicyUpdateBatch(b *testing.B) {
	for _, batch := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			table := fedpower.JetsonNanoTable()
			params := fedpower.DefaultControllerParams(table.Len())
			params.BatchSize = batch
			params.OptimInterval = 1 << 30
			ctrl := fedpower.NewController(params, rand.New(rand.NewSource(1)))
			rng := rand.New(rand.NewSource(2))
			state := make([]float64, fedpower.StateDim)
			for i := 0; i < params.ReplayCapacity; i++ {
				for j := range state {
					state[j] = rng.Float64()
				}
				ctrl.Observe(state, rng.Intn(table.Len()), rng.Float64()*2-1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl.Update()
			}
		})
	}
}

// BenchmarkReplayAdd measures the steady-state cost of recording one
// interaction once the ring has wrapped — the per-step replay overhead of
// Algorithm 1, which recycles the evicted sample's state storage and must
// stay at 0 allocs/op.
func BenchmarkReplayAdd(b *testing.B) {
	buf := fedpower.NewReplayBuffer(4000)
	state := []float64{0.5, 0.4, 0.6, 0.1, 0.2}
	for i := 0; i < 4001; i++ {
		buf.Add(state, i%15, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Add(state, i%15, 0.5)
	}
}

// BenchmarkFederatedRound measures one complete federated round with two
// simulated devices: broadcast, 2×T local steps with updates, aggregation.
func BenchmarkFederatedRound(b *testing.B) {
	o := benchOptions()
	o.Rounds = 1
	for i := 0; i < b.N; i++ {
		res, err := fedpower.RunScenario(o, 0, fedpower.TableII()[0])
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkModelTransferEncode measures serialising the 687-parameter model
// into the 2.8 kB wire payload and decoding it back — the per-round
// marshalling cost on each device.
func BenchmarkModelTransferEncode(b *testing.B) {
	table := fedpower.JetsonNanoTable()
	ctrl := fedpower.NewController(fedpower.DefaultControllerParams(table.Len()), rand.New(rand.NewSource(1)))
	params := ctrl.ModelParams()
	dst := make([]float64, len(params))
	b.SetBytes(int64(fedpower.TransferSize(len(params))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := fedpower.EncodeModel(params)
		if err := fedpower.DecodeModel(dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrivacyArchitectures runs the local / federated / central
// comparison and reports each architecture's final reward plus the raw
// bytes the central architecture exposes (the federated figure is 0 by
// construction).
func BenchmarkPrivacyArchitectures(b *testing.B) {
	o := benchOptions()
	var res *fedpower.PrivacyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = fedpower.RunPrivacy(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Local.AvgReward, "local_reward")
	b.ReportMetric(res.Federated.AvgReward, "fed_reward")
	b.ReportMetric(res.Central.AvgReward, "central_reward")
	b.ReportMetric(float64(res.Central.RawTraceBytes), "central_raw_B")
}

// BenchmarkExtensionGovernors runs the classical-governor comparison and
// reports the learned policy's reward against the reactive power capper.
func BenchmarkExtensionGovernors(b *testing.B) {
	o := benchOptions()
	var rl, cap_ float64
	for i := 0; i < b.N; i++ {
		res, err := fedpower.RunGovernors(o)
		if err != nil {
			b.Fatal(err)
		}
		rl, _, _, _ = res.Summary("federated-rl")
		cap_, _, _, _ = res.Summary("powercap")
	}
	b.ReportMetric(rl, "rl_reward")
	b.ReportMetric(cap_, "powercap_reward")
}

// BenchmarkExtensionHeterogeneousBudgets runs the future-work experiment
// and reports the tight-budget violation rates of the heterogeneous- and
// mean-trained policies.
func BenchmarkExtensionHeterogeneousBudgets(b *testing.B) {
	o := benchOptions()
	var hetero, homog float64
	for i := 0; i < b.N; i++ {
		res, err := fedpower.RunHeterogeneous(o, []float64{0.45, 0.75})
		if err != nil {
			b.Fatal(err)
		}
		hetero = res.Hetero[0].ViolationRate
		homog = res.Homog[0].ViolationRate
	}
	b.ReportMetric(hetero*100, "hetero_tight_viol_pct")
	b.ReportMetric(homog*100, "homog_tight_viol_pct")
}

// --------------------------------------------------------------------------
// Micro-benchmarks for the hot paths

func BenchmarkDeviceStep(b *testing.B) {
	table := fedpower.JetsonNanoTable()
	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(1)))
	spec, err := fedpower.AppByName("fft")
	if err != nil {
		b.Fatal(err)
	}
	dev.Load(fedpower.NewApp(spec))
	dev.SetLevel(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dev.Done() {
			dev.Load(fedpower.NewApp(spec))
		}
		dev.Step(0.5)
	}
}

func BenchmarkGreedyAction(b *testing.B) {
	table := fedpower.JetsonNanoTable()
	ctrl := fedpower.NewController(fedpower.DefaultControllerParams(table.Len()), rand.New(rand.NewSource(1)))
	state := []float64{0.6, 0.4, 0.6, 0.05, 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctrl.GreedyAction(state)
	}
}

func BenchmarkReplayAddAndSample(b *testing.B) {
	buf := fedpower.NewReplayBuffer(4000)
	rng := rand.New(rand.NewSource(1))
	state := []float64{0.5, 0.4, 0.6, 0.1, 0.2}
	for i := 0; i < 4000; i++ {
		buf.Add(state, i%15, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Add(state, i%15, 0.5)
		_ = buf.Sample(rng, 128, nil)
	}
}

// --------------------------------------------------------------------------
// Ablation benchmarks (design choices from DESIGN.md)

// ablationRun trains scenario 2 federated-only with modified options and
// returns the average federated evaluation reward.
func ablationRun(b *testing.B, mutate func(*fedpower.Options)) float64 {
	b.Helper()
	o := benchOptions()
	mutate(&o)
	res, err := fedpower.RunScenario(o, 1, fedpower.TableII()[1])
	if err != nil {
		b.Fatal(err)
	}
	return res.AvgFedReward()
}

// BenchmarkAblationHardReward compares the paper's soft constraint (Eq. 4)
// against a hard -1 cut-off. The soft variant should train at least as well
// — the paper's argument for gradual penalties.
func BenchmarkAblationHardReward(b *testing.B) {
	var soft, hard float64
	for i := 0; i < b.N; i++ {
		soft = ablationRun(b, func(o *fedpower.Options) {})
		hard = ablationRun(b, func(o *fedpower.Options) { o.Core.Reward.Hard = true })
	}
	b.ReportMetric(soft, "soft_reward")
	b.ReportMetric(hard, "hard_reward")
}

// BenchmarkAblationEpsilonGreedy compares softmax exploration (Eq. 3)
// against ε-greedy on the neural agent.
func BenchmarkAblationEpsilonGreedy(b *testing.B) {
	var softmax, eps float64
	for i := 0; i < b.N; i++ {
		softmax = ablationRun(b, func(o *fedpower.Options) {})
		eps = ablationRun(b, func(o *fedpower.Options) { o.Core = o.Core.WithEpsilonGreedy() })
	}
	b.ReportMetric(softmax, "softmax_reward")
	b.ReportMetric(eps, "epsgreedy_reward")
}

// BenchmarkAblationSyncInterval compares aggregating every round against
// aggregating four times less often at the same total environment budget.
func BenchmarkAblationSyncInterval(b *testing.B) {
	var everyRound, sparse float64
	for i := 0; i < b.N; i++ {
		everyRound = ablationRun(b, func(o *fedpower.Options) {})
		sparse = ablationRun(b, func(o *fedpower.Options) {
			o.Rounds /= 4
			o.StepsPerRound *= 4
		})
	}
	b.ReportMetric(everyRound, "sync_every_round")
	b.ReportMetric(sparse, "sync_every_4_rounds")
}

// BenchmarkAblationReplayCapacity sweeps the replay capacity around the
// paper's C = 4000.
func BenchmarkAblationReplayCapacity(b *testing.B) {
	var small, paper float64
	for i := 0; i < b.N; i++ {
		small = ablationRun(b, func(o *fedpower.Options) { o.Core.ReplayCapacity = 250 })
		paper = ablationRun(b, func(o *fedpower.Options) {})
	}
	b.ReportMetric(small, "capacity_250")
	b.ReportMetric(paper, "capacity_4000")
}

// BenchmarkAblationParticipation compares the paper's full-participation
// protocol against FedAvg-style 50 % client sampling at the same round
// budget, on a four-device split (three apps each).
func BenchmarkAblationParticipation(b *testing.B) {
	apps := [][]string{
		{"fft", "lu", "raytrace"},
		{"volrend", "water-ns", "water-sp"},
		{"ocean", "radix", "fmm"},
		{"radiosity", "barnes", "cholesky"},
	}
	run := func(fraction float64) float64 {
		o := benchOptions()
		table := o.Table
		params := o.Core
		type devState struct {
			dev    *fedpower.Device
			ctrl   *fedpower.Controller
			stream *fedpower.Stream
			obs    fedpower.Observation
			state  []float64
		}
		clients := make([]fedpower.FederatedClient, len(apps))
		for i, names := range apps {
			specs := make([]fedpower.AppSpec, len(names))
			for j, n := range names {
				spec, err := fedpower.AppByName(n)
				if err != nil {
					b.Fatal(err)
				}
				specs[j] = spec
			}
			ds := &devState{
				dev:    fedpower.NewDevice(table, o.Power, rand.New(rand.NewSource(int64(100+i)))),
				ctrl:   fedpower.NewController(params, rand.New(rand.NewSource(int64(200+i)))),
				stream: fedpower.NewStream(rand.New(rand.NewSource(int64(300+i))), specs),
			}
			ds.dev.Load(ds.stream.Next())
			ds.dev.SetLevel(table.Len() / 2)
			ds.obs = ds.dev.Step(o.IntervalS)
			clients[i] = fedpower.FederatedClientFunc(func(round int, global []float64) ([]float64, error) {
				ds.ctrl.SetModelParams(global)
				for t := 0; t < o.StepsPerRound; t++ {
					if ds.dev.Done() {
						ds.dev.Load(ds.stream.Next())
					}
					ds.state = fedpower.StateVector(ds.obs, ds.state)
					a := ds.ctrl.SelectAction(ds.state)
					ds.dev.SetLevel(a)
					ds.obs = ds.dev.Step(o.IntervalS)
					ds.ctrl.Observe(ds.state, a, params.Reward.Reward(ds.obs.NormFreq, ds.obs.PowerW))
				}
				return ds.ctrl.ModelParams(), nil
			})
		}
		global := fedpower.NewController(params, rand.New(rand.NewSource(999))).ModelParams()
		globalCopy := append([]float64(nil), global...)
		err := fedpower.FederatedRunSampled(globalCopy, clients, fraction, o.Rounds, rand.New(rand.NewSource(5)), nil)
		if err != nil {
			b.Fatal(err)
		}
		// Evaluate the final model greedily on every application.
		ctrl := fedpower.NewController(params, rand.New(rand.NewSource(0)))
		ctrl.SetModelParams(globalCopy)
		var sum float64
		var n int
		for ai, spec := range fedpower.SPLASH2() {
			dev := fedpower.NewDevice(table, o.Power, rand.New(rand.NewSource(int64(700+ai))))
			dev.Load(fedpower.NewApp(spec))
			dev.SetLevel(table.Len() / 2)
			obs := dev.Step(o.IntervalS)
			var state []float64
			for t := 0; t < o.EvalSteps && !dev.Done(); t++ {
				state = fedpower.StateVector(obs, state)
				dev.SetLevel(ctrl.GreedyAction(state))
				obs = dev.Step(o.IntervalS)
				sum += params.Reward.Reward(obs.NormFreq, obs.PowerW)
				n++
			}
		}
		return sum / float64(n)
	}
	var full, half float64
	for i := 0; i < b.N; i++ {
		full = run(1.0)
		half = run(0.5)
	}
	b.ReportMetric(full, "full_participation")
	b.ReportMetric(half, "half_participation")
}

// BenchmarkAblationThermal quantifies what the paper's §III-A footnote
// neglects: with the lumped-RC thermal model and leakage-temperature
// feedback enabled, the plant is no longer stationary within a workload,
// so the contextual-bandit formulation is an approximation. The reward gap
// between the two rows is the cost of that approximation.
func BenchmarkAblationThermal(b *testing.B) {
	var isothermal, thermal float64
	for i := 0; i < b.N; i++ {
		isothermal = ablationRun(b, func(o *fedpower.Options) {})
		thermal = ablationRun(b, func(o *fedpower.Options) { o.Thermal = true })
	}
	b.ReportMetric(isothermal, "isothermal_reward")
	b.ReportMetric(thermal, "thermal_reward")
}

// BenchmarkAblationHiddenWidth sweeps the hidden-layer width around the
// paper's 32 neurons.
func BenchmarkAblationHiddenWidth(b *testing.B) {
	var w8, w32, w128 float64
	for i := 0; i < b.N; i++ {
		w8 = ablationRun(b, func(o *fedpower.Options) { o.Core.HiddenNeurons = 8 })
		w32 = ablationRun(b, func(o *fedpower.Options) {})
		w128 = ablationRun(b, func(o *fedpower.Options) { o.Core.HiddenNeurons = 128 })
	}
	b.ReportMetric(w8, "width_8")
	b.ReportMetric(w32, "width_32")
	b.ReportMetric(w128, "width_128")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
