package fedpower_test

import (
	"math"
	"math/rand"
	"testing"

	"fedpower"
)

// TestDefaultConfigMatchesPaper verifies Table I through the public API —
// the experiment-index entry T1 in DESIGN.md.
func TestDefaultConfigMatchesPaper(t *testing.T) {
	table := fedpower.JetsonNanoTable()
	p := fedpower.DefaultControllerParams(table.Len())
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"Learning Rate (alpha)", p.LearningRate, 0.005},
		{"Max. Temp. (tau_max)", p.TauMax, 0.9},
		{"Temp. Decay (tau_decay)", p.TauDecay, 0.0005},
		{"Min. Temp. (tau_min)", p.TauMin, 0.01},
		{"Replay Capacity (C)", float64(p.ReplayCapacity), 4000},
		{"Batch Size (C_B)", float64(p.BatchSize), 128},
		{"Optim. Intv. (H)", float64(p.OptimInterval), 20},
		{"#Hidden Layers", float64(p.HiddenLayers), 1},
		{"#Neurons/Layer", float64(p.HiddenNeurons), 32},
		{"Pow. Constr. (P_crit)", p.Reward.PCritW, 0.6},
		{"Pow. Offs. (k_offset)", p.Reward.KOffsetW, 0.05},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("Table I %s = %v, want %v", c.name, c.got, c.want)
		}
	}
	o := fedpower.DefaultOptions()
	if o.Rounds != 100 {
		t.Errorf("Table I #Rounds (R) = %d, want 100", o.Rounds)
	}
	if o.StepsPerRound != 100 {
		t.Errorf("Table I #Steps/Round (T) = %d, want 100", o.StepsPerRound)
	}
	if o.IntervalS != 0.5 {
		t.Errorf("Table I Ctrl. Intv. = %v s, want 0.5", o.IntervalS)
	}
}

// TestTransferSizeMatchesPaper pins the §IV-C communication cost: 687
// parameters × 4 B = 2748 B of model data (~2.8 kB) plus 9 framing bytes.
func TestTransferSizeMatchesPaper(t *testing.T) {
	table := fedpower.JetsonNanoTable()
	ctrl := fedpower.NewController(fedpower.DefaultControllerParams(table.Len()), rand.New(rand.NewSource(1)))
	if ctrl.NumParams() != 687 {
		t.Fatalf("policy network has %d params, want 687", ctrl.NumParams())
	}
	if got := fedpower.TransferSize(ctrl.NumParams()); got != 2757 {
		t.Fatalf("TransferSize = %d B, want 2757 (2748 payload + 9 header)", got)
	}
}

func TestPublicAPIControlLoop(t *testing.T) {
	// The full device control loop, exercised purely through the public
	// facade: the code a downstream user would write.
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(1)))
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(2)))
	stream := fedpower.NewStream(rand.New(rand.NewSource(3)), fedpower.SPLASH2())

	dev.Load(stream.Next())
	dev.SetLevel(table.Len() / 2)
	obs := dev.Step(0.5)
	var state []float64
	for i := 0; i < 50; i++ {
		if dev.Done() {
			dev.Load(stream.Next())
		}
		state = fedpower.StateVector(obs, state)
		a := ctrl.SelectAction(state)
		dev.SetLevel(a)
		obs = dev.Step(0.5)
		r := params.Reward.Reward(obs.NormFreq, obs.PowerW)
		if r < -1 || r > 1 {
			t.Fatalf("reward %v outside [-1, 1]", r)
		}
		ctrl.Observe(state, a, r)
	}
	if ctrl.Step() != 50 {
		t.Fatalf("controller recorded %d steps, want 50", ctrl.Step())
	}
	if st := dev.Stats(); st.TimeS <= 0 || st.AvgPowerW() <= 0 {
		t.Fatalf("device stats degenerate: %+v", st)
	}
}

func TestPublicAPIFederatedRun(t *testing.T) {
	// Two in-process clients through the facade; averaging semantics as in
	// Algorithm 2.
	clients := []fedpower.FederatedClient{
		fedpower.FederatedClientFunc(func(round int, global []float64) ([]float64, error) {
			out := make([]float64, len(global))
			for i, g := range global {
				out[i] = g + 1
			}
			return out, nil
		}),
		fedpower.FederatedClientFunc(func(round int, global []float64) ([]float64, error) {
			out := make([]float64, len(global))
			for i, g := range global {
				out[i] = g + 3
			}
			return out, nil
		}),
	}
	global := []float64{0}
	rounds := 0
	err := fedpower.FederatedRun(global, clients, 4, func(r int, g []float64) { rounds++ })
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 4 {
		t.Fatalf("hook ran %d times, want 4", rounds)
	}
	if global[0] != 8 { // +2 per round
		t.Fatalf("global = %v, want 8", global[0])
	}
}

func TestPublicAPIBaseline(t *testing.T) {
	table := fedpower.JetsonNanoTable()
	p := fedpower.DefaultProfitParams(table.Len())
	agent := fedpower.NewCollab(fedpower.NewProfit(p, rand.New(rand.NewSource(1))))
	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(2)))
	spec, err := fedpower.AppByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	dev.Load(fedpower.NewApp(spec))
	dev.SetLevel(7)
	obs := dev.Step(0.5)
	for i := 0; i < 30; i++ {
		key := agent.Local.P.Disc.Key(obs)
		a := agent.SelectAction(key)
		dev.SetLevel(a)
		obs = dev.Step(0.5)
		agent.Observe(key, a, agent.Local.Reward(obs))
	}
	if agent.Local.States() == 0 {
		t.Fatal("baseline visited no states")
	}
	g := fedpower.CollabAggregate([]fedpower.CollabSummary{agent.Summary()})
	if len(g) == 0 {
		t.Fatal("aggregation produced an empty global policy")
	}
	agent.SetGlobal(g)
	if agent.GlobalSize() != len(g) {
		t.Fatal("global policy not installed")
	}
}

func TestPublicAPIFig2(t *testing.T) {
	table := fedpower.JetsonNanoTable()
	rp := fedpower.RewardParams{PCritW: 0.6, KOffsetW: 0.05}
	res := fedpower.RunFig2(table, rp, 9)
	if len(res.FreqMHz) != 15 || len(res.PowerW) != 9 {
		t.Fatalf("Fig. 2 grid %dx%d, want 15x9", len(res.FreqMHz), len(res.PowerW))
	}
	res2 := fedpower.RunFig2Powers(table, rp, []float64{0.5})
	if res2.Reward[14][0] != 1 {
		t.Fatalf("f_max under budget reward = %v, want 1", res2.Reward[14][0])
	}
}

func TestPublicAPIScenarios(t *testing.T) {
	if got := len(fedpower.TableII()); got != 3 {
		t.Fatalf("TableII has %d scenarios, want 3", got)
	}
	sc := fedpower.SplitHalfScenario()
	n := 0
	for _, apps := range sc.Devices {
		n += len(apps)
	}
	if n != 12 {
		t.Fatalf("split-half covers %d apps, want 12", n)
	}
}

func TestPublicAPIOverhead(t *testing.T) {
	res := fedpower.RunOverhead(fedpower.DefaultOptions(), 200)
	if res.ModelParams != 687 || res.TransferBytes != 2757 || res.ReplayBytes != 112000 {
		t.Fatalf("overhead accounting: %+v", res)
	}
}

func TestPublicAPITCPFederation(t *testing.T) {
	srv, err := fedpower.NewServer("127.0.0.1:0", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := fedpower.Dial(srv.Addr())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = conn.Participate(fedpower.FederatedClientFunc(func(round int, global []float64) ([]float64, error) {
			global[0]++
			return global, nil
		}))
		done <- err
	}()
	final, err := srv.Serve([]float64{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if final[0] != 2 {
		t.Fatalf("final model %v, want 2", final[0])
	}
}

// TestQuickFederatedTrainingEndToEnd is the facade-level acceptance test: a
// tiny but complete federated training run through RunScenario, checking the
// learning signal is real (final rewards beat the untrained start).
func TestQuickFederatedTrainingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training run skipped in -short mode")
	}
	o := fedpower.DefaultOptions()
	o.Rounds = 20
	o.StepsPerRound = 60
	o.EvalSteps = 15
	res, err := fedpower.RunScenario(o, 0, fedpower.TableII()[0])
	if err != nil {
		t.Fatal(err)
	}
	firstHalf, secondHalf := 0.0, 0.0
	for i, e := range res.Fed {
		if i < len(res.Fed)/2 {
			firstHalf += e.Reward
		} else {
			secondHalf += e.Reward
		}
	}
	n := float64(len(res.Fed) / 2)
	if math.IsNaN(secondHalf/n) || secondHalf/n <= 0 {
		t.Fatalf("federated policy not learning: late rewards %v", secondHalf/n)
	}
}
