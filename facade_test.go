package fedpower_test

// Tests for the public-facade surface not already covered by the core API
// tests: governors, model encode/decode, weighted federation, the central
// trainer, traces and sweeps.

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fedpower"
)

func TestStandardGovernorsThroughFacade(t *testing.T) {
	table := fedpower.JetsonNanoTable()
	govs := fedpower.StandardGovernors(table.Len(), 0.6)
	if len(govs) != 4 {
		t.Fatalf("%d governors, want 4", len(govs))
	}
	perf := fedpower.NewPerformanceGovernor(table.Len())
	if perf.Action(fedpower.Observation{}) != table.Len()-1 {
		t.Error("performance governor not pinned at f_max")
	}
	if fedpower.NewPowersaveGovernor().Action(fedpower.Observation{Level: 9}) != 0 {
		t.Error("powersave governor not pinned at the bottom")
	}
	if fedpower.NewUserspaceGovernor(5).Action(fedpower.Observation{}) != 5 {
		t.Error("userspace governor not pinned")
	}
	cap_ := fedpower.NewPowerCapGovernor(table.Len(), 0.6, 0.1)
	if got := cap_.Action(fedpower.Observation{Level: 10, PowerW: 0.9}); got != 9 {
		t.Errorf("power capper stepped to %d, want 9", got)
	}
}

func TestEncodeDecodeModelThroughFacade(t *testing.T) {
	params := []float64{0.25, -1.5, 3.0}
	buf := fedpower.EncodeModel(params)
	if len(buf) != 12 {
		t.Fatalf("encoded %d bytes, want 12", len(buf))
	}
	dst := make([]float64, 3)
	if err := fedpower.DecodeModel(dst, buf); err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if dst[i] != params[i] { // exactly representable in float32
			t.Fatalf("param %d: %v -> %v", i, params[i], dst[i])
		}
	}
	if err := fedpower.DecodeModel(dst, buf[:8]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestFederatedRunWeightedThroughFacade(t *testing.T) {
	add := func(delta float64) fedpower.FederatedClientFunc {
		return func(round int, global []float64) ([]float64, error) {
			out := make([]float64, len(global))
			for i, g := range global {
				out[i] = g + delta
			}
			return out, nil
		}
	}
	global := []float64{0}
	err := fedpower.FederatedRunWeighted(global,
		[]fedpower.FederatedClient{add(0), add(4)}, []float64{3, 1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per round the weighted mean adds (3·0 + 1·4)/4 = 1.
	if global[0] != 2 {
		t.Fatalf("global = %v, want 2", global[0])
	}
}

func TestCentralTrainerThroughFacade(t *testing.T) {
	table := fedpower.JetsonNanoTable()
	tr := fedpower.NewCentralTrainer(fedpower.DefaultControllerParams(table.Len()), rand.New(rand.NewSource(1)))
	if tr.RawBytesReceived() != 0 {
		t.Fatal("fresh trainer has received bytes")
	}
	if len(tr.Policy()) != 687 {
		t.Fatalf("central policy has %d params", len(tr.Policy()))
	}
}

func TestTraceRecordersThroughFacade(t *testing.T) {
	entry := fedpower.TraceEntry{Step: 1, App: "fft", Level: 8, FreqMHz: 921.6, PowerW: 0.55, Reward: 0.62}

	var csvBuf bytes.Buffer
	rec := fedpower.NewCSVTraceRecorder(&csvBuf)
	if err := rec.Record(entry); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := fedpower.ReadCSVTrace(&csvBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].App != "fft" {
		t.Fatalf("csv round trip: %+v", entries)
	}

	var jsonBuf bytes.Buffer
	jrec := fedpower.NewJSONLTraceRecorder(&jsonBuf)
	if err := jrec.Record(entry); err != nil {
		t.Fatal(err)
	}
	if err := jrec.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"app":"fft"`) {
		t.Fatalf("jsonl output %q", jsonBuf.String())
	}
	jentries, err := fedpower.ReadJSONLTrace(&jsonBuf)
	if err != nil || len(jentries) != 1 {
		t.Fatalf("jsonl round trip: %v, %v", jentries, err)
	}
}

func TestSweepFactoriesThroughFacade(t *testing.T) {
	if len(fedpower.LearningRateSweep()) == 0 ||
		len(fedpower.TauDecaySweep()) == 0 ||
		len(fedpower.BatchSizeSweep()) == 0 ||
		len(fedpower.HiddenWidthSweep()) == 0 {
		t.Fatal("a default sweep is empty")
	}
	o := fedpower.DefaultOptions()
	pt := fedpower.LearningRateSweep(0.01)[0]
	pt.Mutate(&o)
	if o.Core.LearningRate != 0.01 {
		t.Fatal("sweep mutation did not apply")
	}
}

func TestThermalModelThroughFacade(t *testing.T) {
	m := fedpower.DefaultThermalModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		m.Advance(0.6, 100) // 12 thermal time constants in total
	}
	if math.Abs(m.TempC()-m.SteadyStateC(0.6)) > 0.1 {
		t.Fatalf("temperature %v after saturation, want %v", m.TempC(), m.SteadyStateC(0.6))
	}
	dev := fedpower.NewDevice(fedpower.JetsonNanoTable(), fedpower.DefaultPowerModel(), rand.New(rand.NewSource(1)))
	dev.Thermal = fedpower.DefaultThermalModel()
	spec, err := fedpower.AppByName("lu")
	if err != nil {
		t.Fatal(err)
	}
	dev.Load(fedpower.NewApp(spec))
	dev.SetLevel(10)
	obs := dev.Step(0.5)
	if obs.TempC <= 25 {
		t.Fatalf("thermal observation %v, want above ambient", obs.TempC)
	}
}

func TestMultiCoreThroughFacade(t *testing.T) {
	table := fedpower.JetsonNanoTable()
	clu := fedpower.NewMultiCoreDevice(table, fedpower.DefaultPowerModel(), 4, rand.New(rand.NewSource(1)))
	spec, err := fedpower.AppByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		clu.LoadCore(i, fedpower.NewApp(spec))
	}
	clu.SetLevel(14)
	obs := clu.Step(0.5)
	if obs.Instr <= 0 || obs.PowerW <= 0 {
		t.Fatalf("cluster step degenerate: %+v", obs)
	}
	if clu.AllDone() {
		t.Fatal("cluster done after one interval")
	}
}
