package fedpower_test

// End-to-end proof that rewiring core.Controller.Update onto the batched
// kernels changed no result bit anywhere in the reproduction: a full Fig. 3
// scenario — two federated devices, local baselines, replay wraparound,
// softmax exploration, Adam — is run through both Update implementations
// and compared with reflect.DeepEqual, and the batched run is additionally
// pinned to golden values captured from the pre-rewrite scalar-only
// implementation. Part of the determinism replay gate (-count=2).

import (
	"math"
	"reflect"
	"testing"

	"fedpower"
)

// Golden Fig. 3 scenario-2 aggregates captured at commit ce3712e (the last
// commit before the batched-kernel rewrite), at the reduced benchmark
// budget below: math.Float64bits of AvgFedReward and AvgLocalReward.
const (
	goldenFig3FedBits   = 0x3fe0fde5cfd7baec
	goldenFig3LocalBits = 0x3fd8f2db559dd0c3
)

func fig3BatchOptions() fedpower.Options {
	o := fedpower.DefaultOptions()
	o.Rounds = 40
	o.StepsPerRound = 100
	o.EvalSteps = 15
	o.ExecEvalEvery = 10
	return o
}

func TestFig3BatchBitIdentical(t *testing.T) {
	run := func(scalar bool) *fedpower.ScenarioResult {
		o := fig3BatchOptions()
		o.Core.ScalarUpdate = scalar
		res, err := fedpower.RunScenario(o, 1, fedpower.TableII()[1])
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	batched, scalar := run(false), run(true)
	if !reflect.DeepEqual(batched, scalar) {
		t.Errorf("batched and scalar Update produced different scenario results")
	}
	if bits := math.Float64bits(batched.AvgFedReward()); bits != goldenFig3FedBits {
		t.Errorf("AvgFedReward = %#x (%v), pre-rewrite golden %#x (%v)",
			bits, batched.AvgFedReward(), uint64(goldenFig3FedBits), math.Float64frombits(goldenFig3FedBits))
	}
	if bits := math.Float64bits(batched.AvgLocalReward()); bits != goldenFig3LocalBits {
		t.Errorf("AvgLocalReward = %#x (%v), pre-rewrite golden %#x (%v)",
			bits, batched.AvgLocalReward(), uint64(goldenFig3LocalBits), math.Float64frombits(goldenFig3LocalBits))
	}
}
