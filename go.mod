module fedpower

go 1.22
