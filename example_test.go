package fedpower_test

// Testable godoc examples for the core public API. Each runs as part of
// the test suite and renders on the package documentation page.

import (
	"fmt"
	"math/rand"

	"fedpower"
)

// ExampleJetsonNanoTable shows the evaluation platform's V/f range.
func ExampleJetsonNanoTable() {
	table := fedpower.JetsonNanoTable()
	fmt.Printf("%d levels, %.0f-%.0f MHz\n", table.Len(), table.MinFreqMHz(), table.MaxFreqMHz())
	fmt.Printf("level 8: %.1f MHz at %.3f V\n", table.Level(8).FreqMHz, table.Level(8).VoltV)
	// Output:
	// 15 levels, 102-1479 MHz
	// level 8: 921.6 MHz at 1.068 V
}

// ExampleRewardParams_Reward evaluates Eq. (4) at its characteristic
// points.
func ExampleRewardParams_Reward() {
	rp := fedpower.RewardParams{PCritW: 0.6, KOffsetW: 0.05}
	fmt.Printf("under budget:   %+.2f\n", rp.Reward(1.0, 0.55))
	fmt.Printf("soft band:      %+.2f\n", rp.Reward(1.0, 0.625))
	fmt.Printf("negative band:  %+.2f\n", rp.Reward(1.0, 0.675))
	fmt.Printf("saturated:      %+.2f\n", rp.Reward(1.0, 0.9))
	// Output:
	// under budget:   +1.00
	// soft band:      +0.50
	// negative band:  -0.50
	// saturated:      -1.00
}

// ExampleNewController builds the paper's policy network and inspects its
// size — the quantities behind the 2.8 kB federated transfer.
func ExampleNewController() {
	table := fedpower.JetsonNanoTable()
	params := fedpower.DefaultControllerParams(table.Len())
	ctrl := fedpower.NewController(params, rand.New(rand.NewSource(1)))
	fmt.Printf("%d parameters, %d B per transfer\n", ctrl.NumParams(), fedpower.TransferSize(ctrl.NumParams()))
	// Output:
	// 687 parameters, 2757 B per transfer
}

// ExampleFederatedRun demonstrates one in-process federation: two clients
// whose updates are averaged each round (Algorithm 2).
func ExampleFederatedRun() {
	add := func(delta float64) fedpower.FederatedClientFunc {
		return func(round int, global []float64) ([]float64, error) {
			out := make([]float64, len(global))
			for i, g := range global {
				out[i] = g + delta
			}
			return out, nil
		}
	}
	global := []float64{0}
	err := fedpower.FederatedRun(global, []fedpower.FederatedClient{add(2), add(4)}, 3, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("global after 3 rounds: %v\n", global[0])
	// Output:
	// global after 3 rounds: 9
}

// ExampleDevice_Step runs one noiseless control interval on the simulated
// processor and reads the performance counters the agent observes.
func ExampleDevice_Step() {
	table := fedpower.JetsonNanoTable()
	dev := fedpower.NewDevice(table, fedpower.DefaultPowerModel(), rand.New(rand.NewSource(1)))
	dev.PowerNoiseW, dev.IPCNoiseRel = 0, 0 // deterministic sensors for the example

	spec, _ := fedpower.AppByName("ocean")
	dev.Load(fedpower.NewApp(spec))
	dev.SetLevel(14) // memory-bound: f_max fits the budget
	obs := dev.Step(0.5)
	fmt.Printf("f=%.0f MHz  P=%.2f W  ipc=%.2f  mpki=%.1f\n", obs.FreqMHz, obs.PowerW, obs.IPC, obs.MPKI)
	// Output:
	// f=1479 MHz  P=0.48 W  ipc=0.27  mpki=24.2
}

// ExampleRoundsToReach computes the convergence-speed metric on a reward
// trace.
func ExampleRoundsToReach() {
	trace := []fedpower.RoundEval{
		{Round: 1, Reward: 0.1},
		{Round: 2, Reward: 0.3},
		{Round: 3, Reward: 0.55},
		{Round: 4, Reward: 0.6},
	}
	fmt.Println(fedpower.RoundsToReach(trace, 0.5, 1))
	fmt.Println(fedpower.RoundsToReach(trace, 0.9, 1))
	// Output:
	// 3
	// -1
}
